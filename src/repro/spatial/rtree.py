"""A bulk-loaded R-tree (Sort-Tile-Recursive packing) for point data.

The paper's related work evaluates centralized spatial preference queries over
R-tree-indexed data (e.g. Yiu et al., Rocha-Junior et al.).  This module
provides the spatial index needed to implement such a centralized, indexed
baseline: an STR-packed R-tree over points supporting range (disk) queries and
bounding-box queries, with node-access accounting so baselines can report I/O
style cost next to the MapReduce algorithms' counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.spatial.geometry import BoundingBox

T = TypeVar("T")


@dataclass
class _Entry(Generic[T]):
    """Leaf entry: a point payload with its coordinates."""

    x: float
    y: float
    item: T


@dataclass
class _Node(Generic[T]):
    """R-tree node: either a leaf (entries) or an internal node (children)."""

    box: BoundingBox
    entries: List[_Entry[T]] = field(default_factory=list)
    children: List["_Node[T]"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _bounding_box_of_entries(entries: Sequence[_Entry]) -> BoundingBox:
    xs = [entry.x for entry in entries]
    ys = [entry.y for entry in entries]
    return BoundingBox(min(xs), min(ys), max(xs), max(ys))


def _bounding_box_of_nodes(nodes: Sequence[_Node]) -> BoundingBox:
    return BoundingBox(
        min(node.box.min_x for node in nodes),
        min(node.box.min_y for node in nodes),
        max(node.box.max_x for node in nodes),
        max(node.box.max_y for node in nodes),
    )


class RTree(Generic[T]):
    """Static R-tree over points, bulk-loaded with Sort-Tile-Recursive packing.

    Args:
        items: ``(x, y, payload)`` triples to index.
        max_entries: Node fan-out (default 32, a typical page-sized fan-out).
    """

    def __init__(self, items: Iterable[Tuple[float, float, T]], max_entries: int = 32) -> None:
        if max_entries < 2:
            raise ValueError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries
        entries = [_Entry(x, y, item) for x, y, item in items]
        self._size = len(entries)
        self._root: Optional[_Node[T]] = self._bulk_load(entries) if entries else None
        #: Number of nodes visited by queries since construction (reset with
        #: :meth:`reset_stats`); a proxy for index I/O.
        self.nodes_accessed = 0

    # ------------------------------------------------------------------ #
    # construction

    def _bulk_load(self, entries: List[_Entry[T]]) -> _Node[T]:
        leaves = self._pack_leaves(entries)
        levels = leaves
        while len(levels) > 1:
            levels = self._pack_internal(levels)
        return levels[0]

    def _pack_leaves(self, entries: List[_Entry[T]]) -> List[_Node[T]]:
        capacity = self.max_entries
        num_leaves = math.ceil(len(entries) / capacity)
        slices = math.ceil(math.sqrt(num_leaves))
        entries = sorted(entries, key=lambda e: e.x)
        slice_size = slices * capacity
        leaves: List[_Node[T]] = []
        for start in range(0, len(entries), slice_size):
            vertical = sorted(entries[start:start + slice_size], key=lambda e: e.y)
            for inner in range(0, len(vertical), capacity):
                chunk = vertical[inner:inner + capacity]
                leaves.append(_Node(box=_bounding_box_of_entries(chunk), entries=chunk))
        return leaves

    def _pack_internal(self, nodes: List[_Node[T]]) -> List[_Node[T]]:
        capacity = self.max_entries
        num_parents = math.ceil(len(nodes) / capacity)
        slices = math.ceil(math.sqrt(num_parents))
        nodes = sorted(nodes, key=lambda n: n.box.center.x)
        slice_size = slices * capacity
        parents: List[_Node[T]] = []
        for start in range(0, len(nodes), slice_size):
            vertical = sorted(nodes[start:start + slice_size], key=lambda n: n.box.center.y)
            for inner in range(0, len(vertical), capacity):
                chunk = vertical[inner:inner + capacity]
                parents.append(_Node(box=_bounding_box_of_nodes(chunk), children=chunk))
        return parents

    # ------------------------------------------------------------------ #
    # inspection

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (0 for an empty tree, 1 for a single leaf)."""
        height = 0
        node = self._root
        while node is not None:
            height += 1
            node = node.children[0] if node.children else None
        return height

    def reset_stats(self) -> None:
        """Reset the node-access counter."""
        self.nodes_accessed = 0

    # ------------------------------------------------------------------ #
    # queries

    def query_range(self, x: float, y: float, radius: float) -> List[T]:
        """All payloads within Euclidean distance ``radius`` of ``(x, y)``."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        if self._root is None:
            return []
        results: List[T] = []
        radius_sq = radius * radius
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_accessed += 1
            if node.is_leaf:
                for entry in node.entries:
                    dx = entry.x - x
                    dy = entry.y - y
                    if dx * dx + dy * dy <= radius_sq:
                        results.append(entry.item)
                continue
            for child in node.children:
                if child.box.min_distance(x, y) <= radius:
                    stack.append(child)
        return results

    def query_box(self, box: BoundingBox) -> List[T]:
        """All payloads whose point lies inside ``box``."""
        if self._root is None:
            return []
        results: List[T] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.nodes_accessed += 1
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                results.extend(
                    entry.item for entry in node.entries if box.contains(entry.x, entry.y)
                )
            else:
                stack.extend(node.children)
        return results

    def all_items(self) -> List[T]:
        """Every indexed payload (in no particular order)."""
        if self._root is None:
            return []
        results: List[T] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                results.extend(entry.item for entry in node.entries)
            else:
                stack.extend(node.children)
        return results
