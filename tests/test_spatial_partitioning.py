"""Unit tests for the grid partitioner (Lemma 1) and the A1..A4 region analysis."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import InvalidGridError
from repro.model.objects import DataObject, FeatureObject
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import UniformGrid
from repro.spatial.partitioning import (
    GridPartitioner,
    classify_position,
    duplication_regions,
    expected_duplicates_per_feature,
)


@pytest.fixture()
def grid():
    return UniformGrid.square(BoundingBox(0, 0, 10, 10), 4)


class TestGridPartitioner:
    def test_rejects_negative_radius(self, grid):
        with pytest.raises(InvalidGridError):
            GridPartitioner(grid, -1.0)

    def test_data_object_assigned_to_single_enclosing_cell(self, grid):
        partitioner = GridPartitioner(grid, 1.5)
        assert partitioner.assign_data_object(DataObject("p", 4.6, 4.8)) == 6

    def test_feature_primary_cell_first(self, grid):
        partitioner = GridPartitioner(grid, 1.5)
        cells = partitioner.assign_feature_object(FeatureObject("f", 3.0, 8.1, {"x"}))
        assert cells[0] == 14

    def test_feature_in_cell_centre_not_duplicated(self, grid):
        partitioner = GridPartitioner(grid, 1.0)
        cells = partitioner.assign_feature_object(FeatureObject("f", 6.25, 6.25, {"x"}))
        assert len(cells) == 1

    def test_partition_collects_objects_per_cell(self, grid):
        partitioner = GridPartitioner(grid, 1.5)
        data = [DataObject("p1", 1.0, 1.0), DataObject("p2", 9.0, 9.0)]
        features = [FeatureObject("f1", 1.2, 1.2, {"a"})]
        cells, stats = partitioner.partition(data, features)
        assert cells[1].num_data == 1
        assert cells[16].num_data == 1
        assert stats.num_data == 2
        assert stats.num_features == 1
        assert stats.num_feature_copies >= 1

    def test_duplication_factor_at_least_one(self, grid, small_uniform_dataset):
        data, features = small_uniform_dataset
        partitioner = GridPartitioner(grid, 1.0)
        _, stats = partitioner.partition(data, features)
        assert stats.duplication_factor >= 1.0

    def test_duplication_factor_of_empty_feature_set_is_one(self, grid):
        partitioner = GridPartitioner(grid, 1.0)
        _, stats = partitioner.partition([DataObject("p", 1, 1)], [])
        assert stats.duplication_factor == 1.0

    def test_every_feature_copy_satisfies_lemma1(self, grid, small_uniform_dataset):
        """Every duplicated copy goes to a cell with MINDIST <= r, and no
        qualifying cell is missed (Lemma 1 exactness)."""
        _, features = small_uniform_dataset
        # The synthetic dataset lives in [0, 100]^2; build a matching grid so
        # no object needs boundary clamping.
        data_grid = UniformGrid.square(BoundingBox(0, 0, 100, 100), 8)
        radius = 5.5
        partitioner = GridPartitioner(data_grid, radius)
        for feature in features[:200]:
            assigned = set(partitioner.assign_feature_object(feature))
            for cell_id in range(1, data_grid.num_cells + 1):
                mindist = data_grid.min_distance(cell_id, feature.x, feature.y)
                if mindist <= radius:
                    assert cell_id in assigned
                else:
                    assert cell_id not in assigned

    def test_zero_radius_never_duplicates_interior_features(self, grid):
        partitioner = GridPartitioner(grid, 0.0)
        rng = random.Random(5)
        for _ in range(100):
            # Strictly interior points (off the shared cell boundaries).
            x = rng.uniform(0.01, 9.99)
            y = rng.uniform(0.01, 9.99)
            if x % 2.5 < 1e-6 or y % 2.5 < 1e-6:
                continue
            cells = partitioner.assign_feature_object(FeatureObject("f", x, y, {"w"}))
            assert len(cells) == 1


class TestDuplicationRegions:
    def test_region_areas_sum_to_cell_area(self):
        regions = duplication_regions(cell_side=4.0, radius=1.0)
        total = regions["A1"] + regions["A2"] + regions["A3"] + regions["A4"]
        assert total == pytest.approx(regions["total"])

    def test_region_formulas(self):
        a, r = 10.0, 2.0
        regions = duplication_regions(a, r)
        assert regions["A1"] == pytest.approx(math.pi * r * r)
        assert regions["A2"] == pytest.approx((4 - math.pi) * r * r)
        assert regions["A3"] == pytest.approx(4 * (a - 2 * r) * r)
        assert regions["A4"] == pytest.approx((a - 2 * r) ** 2)

    def test_zero_radius_means_no_duplication_area(self):
        regions = duplication_regions(cell_side=5.0, radius=0.0)
        assert regions["A1"] == 0.0
        assert regions["A2"] == 0.0
        assert regions["A3"] == 0.0
        assert regions["A4"] == pytest.approx(25.0)

    def test_max_radius_leaves_no_interior(self):
        regions = duplication_regions(cell_side=2.0, radius=1.0)
        assert regions["A4"] == pytest.approx(0.0)
        assert regions["A3"] == pytest.approx(0.0)

    def test_rejects_radius_beyond_half_cell(self):
        with pytest.raises(ValueError):
            duplication_regions(cell_side=2.0, radius=1.1)

    def test_rejects_non_positive_cell(self):
        with pytest.raises(ValueError):
            duplication_regions(cell_side=0.0, radius=0.0)

    def test_expected_duplicates_matches_df_minus_one(self):
        from repro.core.analysis import duplication_factor

        a, r = 8.0, 1.5
        assert expected_duplicates_per_feature(a, r) == pytest.approx(
            duplication_factor(a, r) - 1.0
        )


class TestClassifyPosition:
    def test_corner_region(self):
        assert classify_position(10.0, 1.0, 0.5, 0.5) == "A1"

    def test_two_border_region(self):
        # Near two borders but outside the quarter-circle at the corner.
        assert classify_position(10.0, 1.0, 0.95, 0.95) == "A2"

    def test_single_border_region(self):
        assert classify_position(10.0, 1.0, 5.0, 0.5) == "A3"

    def test_interior_region(self):
        assert classify_position(10.0, 1.0, 5.0, 5.0) == "A4"

    def test_rejects_positions_outside_cell(self):
        with pytest.raises(ValueError):
            classify_position(10.0, 1.0, 11.0, 5.0)

    def test_classification_matches_observed_duplicates(self):
        """The region class predicts exactly how many copies the partitioner makes
        (for an interior cell of a 4x4 grid)."""
        grid = UniformGrid.square(BoundingBox(0, 0, 40, 40), 4)
        radius = 2.0
        partitioner = GridPartitioner(grid, radius)
        cell = grid.cell_box(6)  # interior cell: neighbours on all sides
        rng = random.Random(11)
        duplicates_by_region = {"A1": 3, "A2": 2, "A3": 1, "A4": 0}
        for _ in range(300):
            ox = rng.uniform(0.0, grid.cell_width)
            oy = rng.uniform(0.0, grid.cell_height)
            region = classify_position(grid.cell_width, radius, ox, oy)
            feature = FeatureObject("f", cell.min_x + ox, cell.min_y + oy, {"w"})
            copies = len(partitioner.assign_feature_object(feature)) - 1
            assert copies == duplicates_by_region[region]
