#!/usr/bin/env python
"""Hotel finder over a synthetic city: the paper's motivating scenario at scale.

Generates a clustered "city" of hotels (data objects) and restaurants
annotated with cuisine keywords (feature objects), then answers several
spatial preference queries -- "best hotels with a highly-relevant <cuisine>
restaurant nearby" -- comparing the three distributed algorithms on result
quality (identical) and on the work they perform (very different).

Run with::

    python examples/hotel_finder.py
"""

from __future__ import annotations

import random

from repro import DataObject, FeatureObject, SPQEngine, SpatialPreferenceQuery

CUISINES = [
    "italian", "sushi", "greek", "mexican", "indian", "chinese", "thai",
    "french", "burger", "vegan", "seafood", "bbq", "tapas", "ramen",
]
QUALIFIERS = [
    "gourmet", "cheap", "romantic", "family", "rooftop", "organic", "late-night",
    "historic", "waterfront", "buffet",
]

CITY_SIZE = 40.0
NUM_DISTRICTS = 8
NUM_HOTELS = 2_000
NUM_RESTAURANTS = 3_000


def build_city(seed: int = 2024):
    """Hotels and restaurants clustered around a handful of districts."""
    rng = random.Random(seed)
    districts = [
        (rng.uniform(5, CITY_SIZE - 5), rng.uniform(5, CITY_SIZE - 5))
        for _ in range(NUM_DISTRICTS)
    ]

    def place():
        cx, cy = districts[rng.randrange(NUM_DISTRICTS)]
        return (
            min(max(rng.gauss(cx, 2.0), 0.0), CITY_SIZE),
            min(max(rng.gauss(cy, 2.0), 0.0), CITY_SIZE),
        )

    hotels = []
    for index in range(NUM_HOTELS):
        x, y = place()
        hotels.append(DataObject(f"hotel-{index}", x, y))

    restaurants = []
    for index in range(NUM_RESTAURANTS):
        x, y = place()
        keywords = {rng.choice(CUISINES)} | set(
            rng.sample(QUALIFIERS, rng.randint(0, 3))
        )
        restaurants.append(FeatureObject(f"rest-{index}", x, y, keywords))
    return hotels, restaurants


def main() -> None:
    hotels, restaurants = build_city()
    engine = SPQEngine(hotels, restaurants)

    queries = {
        "romantic italian dinner": {"italian", "romantic"},
        "cheap ramen nearby": {"ramen", "cheap"},
        "gourmet seafood on the waterfront": {"seafood", "gourmet", "waterfront"},
    }

    for title, keywords in queries.items():
        query = SpatialPreferenceQuery.create(k=5, radius=1.0, keywords=keywords)
        print(f"== {title} ==  ({query.describe()})")
        reference = None
        for algorithm in ("pspq", "espq-len", "espq-sco"):
            result = engine.execute(query, algorithm=algorithm, grid_size=20)
            scores = [round(score, 3) for score in result.scores()]
            if reference is None:
                reference = scores
                for entry in result:
                    print(f"   {entry.obj.oid:<12} score={entry.score:.3f} "
                          f"at ({entry.obj.x:.1f}, {entry.obj.y:.1f})")
            assert scores == reference, "algorithms disagree!"
            print(
                f"   {algorithm:<10} features examined: "
                f"{result.stats['features_examined']:>6}   "
                f"score computations: {result.stats['score_computations']:>7}   "
                f"simulated time: {result.stats['simulated_seconds']:7.1f}s"
            )
        print()

    print("All three algorithms return identical rankings; the early-termination")
    print("variants examine only a fraction of the restaurant dataset.")


if __name__ == "__main__":
    main()
