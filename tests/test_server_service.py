"""Tests for the query service: identity, batching, caching, durability."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.engine import EngineConfig, SPQEngine
from repro.exceptions import InvalidQueryError
from repro.model.query import SpatialPreferenceQuery
from repro.planner import load_calibration
from repro.server import QueryService, ServiceConfig
from repro.server.cache import ResultCache

GRID = 10


def make_service(dataset, **service_kwargs) -> QueryService:
    data, features = dataset
    service_kwargs.setdefault("engines", 1)
    service_kwargs.setdefault("default_grid_size", GRID)
    return QueryService(
        data,
        features,
        engine_config=EngineConfig(grid_size=GRID),
        config=ServiceConfig(**service_kwargs),
    )


@pytest.fixture()
def service(small_uniform_dataset):
    with make_service(small_uniform_dataset) as svc:
        yield svc


class TestSubmitIdentity:
    def test_submit_matches_offline_execute(self, service, small_uniform_dataset):
        data, features = small_uniform_dataset
        spec = {"keywords": ["w0001"], "k": 5, "radius": 2.0}
        response = service.submit(spec)
        with SPQEngine(data, features) as engine:
            offline = engine.execute(
                SpatialPreferenceQuery.create(k=5, radius=2.0, keywords={"w0001"}),
                algorithm="espq-sco",
                grid_size=GRID,
            )
        assert [(e["oid"], e["score"]) for e in response["results"]] == [
            (e.obj.oid, e.score) for e in offline
        ]
        assert response["cached"] is False
        assert response["algorithm"] == "espq-sco"

    def test_submit_many_returns_input_order(self, service):
        specs = [
            {"keywords": [f"w000{i}"], "k": 3, "radius": 2.0} for i in (1, 2, 3)
        ]
        responses = service.submit_many(specs)
        assert [r["keywords"] for r in responses] == [s["keywords"] for s in specs]

    def test_auto_reports_planned_algorithm(self, service):
        response = service.submit(
            {"keywords": ["w0002"], "k": 3, "radius": 2.0, "algorithm": "auto"}
        )
        assert response["planned_algorithm"] in ("pspq", "espq-len", "espq-sco")

    def test_stats_flag_attaches_stats(self, service):
        response = service.submit(
            {"keywords": ["w0002"], "k": 3, "radius": 2.0, "stats": True}
        )
        assert "simulated_seconds" in response["stats"]
        bare = service.submit({"keywords": ["w0002"], "k": 3, "radius": 2.0})
        assert "stats" not in bare

    def test_response_is_json_serializable(self, service):
        response = service.submit(
            {"keywords": ["w0001"], "k": 2, "radius": 2.0, "stats": True}
        )
        json.dumps(response)


class TestResultCache:
    def test_repeat_hits_cache(self, service):
        spec = {"keywords": ["w0003"], "k": 4, "radius": 2.0}
        first = service.submit(spec)
        batches_after_first = service.stats()["batching"]["batches"]
        second = service.submit(spec)
        assert first["cached"] is False
        assert second["cached"] is True
        # The hit never reached an engine: no new micro-batch ran.
        assert service.stats()["batching"]["batches"] == batches_after_first
        assert second["results"] == first["results"]

    def test_cached_hit_can_still_attach_stats(self, service):
        spec = {"keywords": ["w0003"], "k": 4, "radius": 2.0}
        service.submit(spec)
        with_stats = service.submit({**spec, "stats": True})
        assert with_stats["cached"] is True
        assert "simulated_seconds" in with_stats["stats"]

    def test_equivalent_spellings_share_an_entry(self, service):
        first = service.submit(
            {"keywords": ["w0004", "w0005"], "k": 4, "radius": 2.0}
        )
        second = service.submit(
            {"keywords": "w0005,w0004", "k": 4, "radius": 2.0}
        )
        third = service.submit(
            {"keywords": [" w0005", "w0004 "], "k": 4, "radius": 2.0}
        )
        assert first["cached"] is False
        assert second["cached"] is True
        assert third["cached"] is True

    def test_cached_entries_are_isolated_from_caller_mutation(self, service):
        spec = {"keywords": ["w0008"], "k": 3, "radius": 2.0, "stats": True}
        first = service.submit(spec)
        first["stats"]["planner_estimates"] = "clobbered"
        first["results"].clear()
        second = service.submit(spec)
        assert second["cached"] is True
        assert second["results"] != []
        # The clobbered key never reached the cached copy.
        assert second["stats"].get("planner_estimates") != "clobbered"

    def test_dataset_swap_invalidates(self, small_uniform_dataset):
        data, features = small_uniform_dataset
        with make_service(small_uniform_dataset) as service:
            spec = {"keywords": ["w0001"], "k": 3, "radius": 2.0}
            service.submit(spec)
            service.set_datasets(data[: len(data) // 2], features)
            response = service.submit(spec)
            assert response["cached"] is False

    def test_dataset_swap_rederives_default_radius(self, small_uniform_dataset):
        from repro.model.objects import DataObject, FeatureObject

        with make_service(small_uniform_dataset) as service:
            old_radius = service.submit({"keywords": ["w0001"], "k": 1})["radius"]
            # A much larger extent must re-derive a proportionally larger
            # default radius: 10% of the new grid's cell side.
            service.set_datasets(
                [DataObject("d1", 0.0, 0.0), DataObject("d2", 10_000.0, 10_000.0)],
                [FeatureObject("f1", 5_000.0, 5_000.0, frozenset({"w0001"}))],
            )
            new_radius = service.submit({"keywords": ["w0001"], "k": 1})["radius"]
            assert new_radius == pytest.approx(10_000.0 / GRID * 0.10)
            assert new_radius > old_radius * 50

    def test_capacity_zero_disables(self, small_uniform_dataset):
        with make_service(
            small_uniform_dataset, result_cache_capacity=0
        ) as service:
            spec = {"keywords": ["w0001"], "k": 3, "radius": 2.0}
            assert service.submit(spec)["cached"] is False
            assert service.submit(spec)["cached"] is False
            assert service.stats()["result_cache"]["hits"] == 0

    def test_cache_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_submit_many_mixes_hits_and_misses(self, service):
        spec = {"keywords": ["w0006"], "k": 3, "radius": 2.0}
        other = {"keywords": ["w0007"], "k": 3, "radius": 2.0}
        service.submit(spec)
        responses = service.submit_many([spec, other, spec])
        assert [r["cached"] for r in responses] == [True, False, True]
        assert responses[0]["keywords"] == ["w0006"]
        assert responses[1]["keywords"] == ["w0007"]


class TestValidation:
    @pytest.mark.parametrize("spec", [
        {"keywords": []},
        {"keywords": "   "},
        {"keywords": ["w0001"], "k": 0},
        {"keywords": ["w0001"], "k": True},
        {"keywords": ["w0001"], "radius": "big"},
        {"keywords": ["w0001"], "radius": float("nan")},
        {"keywords": ["w0001"], "radius": float("inf")},
        {"keywords": ["w0001"], "grid_size": 0},
        {"keywords": ["w0001"], "algorithm": "bogus"},
        {"keywords": ["w0001"], "score_mode": "bogus"},
        {"keywords": ["w0001"], "algorithm": "auto", "score_mode": "influence"},
        {"keywords": ["w0001"], "stats": "yes"},
        {"keywords": ["w0001"], "keyword": ["typo"]},
        "not an object",
    ])
    def test_invalid_requests_rejected(self, service, spec):
        with pytest.raises(InvalidQueryError):
            service.submit(spec)

    def test_invalid_request_does_not_fail_others(self, service):
        with pytest.raises(InvalidQueryError):
            service.submit({"keywords": ["w0001"], "k": -1})
        response = service.submit({"keywords": ["w0001"], "k": 3, "radius": 2.0})
        assert response["results"] is not None

    def test_not_started_rejected(self, small_uniform_dataset):
        service = make_service(small_uniform_dataset)
        with pytest.raises(RuntimeError, match="not started"):
            service.submit({"keywords": ["w0001"]})
        service.shutdown()

    def test_submit_after_shutdown_rejected(self, small_uniform_dataset):
        service = make_service(small_uniform_dataset)
        service.start()
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit({"keywords": ["w0001"]})


class TestMicroBatching:
    def test_concurrent_requests_share_batches(self, small_uniform_dataset):
        with make_service(
            small_uniform_dataset,
            engines=1,
            max_batch=8,
            batch_window_seconds=0.05,
            result_cache_capacity=0,
        ) as service:
            specs = [
                {"keywords": [f"w00{10 + i}"], "k": 3, "radius": 2.0}
                for i in range(6)
            ]
            threads = [
                threading.Thread(target=service.submit, args=(spec,))
                for spec in specs
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            batching = service.stats()["batching"]
            assert batching["batched_requests"] == 6
            # Six requests in well under the 50ms window: they cannot all
            # have run alone.
            assert batching["batches"] < 6
            assert batching["max_batch_observed"] >= 2

    def test_execution_error_fails_request_not_service(
        self, service, monkeypatch
    ):
        def boom(self, *args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(SPQEngine, "execute_many", boom)
        with pytest.raises(RuntimeError, match="engine exploded"):
            service.submit({"keywords": ["w0021"], "k": 3, "radius": 2.0})
        monkeypatch.undo()
        response = service.submit({"keywords": ["w0021"], "k": 3, "radius": 2.0})
        assert response["cached"] is False
        stats = service.stats()["requests"]
        assert stats["failed"] == 1
        assert stats["completed"] >= 1


class TestLifecycle:
    def test_shutdown_idempotent_and_engines_reclosable(
        self, small_uniform_dataset
    ):
        service = make_service(small_uniform_dataset, engines=2)
        service.start()
        service.submit({"keywords": ["w0001"], "k": 2, "radius": 2.0})
        service.shutdown()
        service.shutdown()  # restart-path double shutdown
        for engine in service.engines:
            engine.close()  # close-while-pooled: already closed by shutdown
            engine.close()
        assert service.closed

    def test_start_idempotent(self, small_uniform_dataset):
        service = make_service(small_uniform_dataset)
        service.start()
        service.start()
        service.shutdown()

    def test_engine_pool_shares_index_cache(self, small_uniform_dataset):
        with make_service(
            small_uniform_dataset,
            engines=2,
            result_cache_capacity=0,
        ) as service:
            spec = {"keywords": ["w0001"], "k": 3, "radius": 2.0}
            for _ in range(4):
                service.submit(spec)
            cache = service.stats()["index_cache"]
            # One build ever, however many engines served the requests.
            assert cache["misses"] == 1
            assert cache["hits"] >= 3

    def test_rejects_nonpositive_engine_pool(self, small_uniform_dataset):
        with pytest.raises(ValueError, match="engines"):
            make_service(small_uniform_dataset, engines=0)


class TestCalibrationDurability:
    def test_saved_on_shutdown_and_restored_on_start(
        self, small_uniform_dataset, tmp_path
    ):
        path = tmp_path / "calibration.json"
        spec = {"keywords": ["w0001"], "k": 3, "radius": 2.0, "algorithm": "auto"}
        with make_service(
            small_uniform_dataset, calibration_path=str(path),
            result_cache_capacity=0,
        ) as first:
            first.submit(spec)
            first.submit(spec)
            observations = first.planner.calibrator.observations
        assert path.exists()
        assert load_calibration(str(path))["observations"] == observations

        with make_service(
            small_uniform_dataset, calibration_path=str(path)
        ) as second:
            persistence = second.stats()["planner"]["persistence"]
            assert persistence["restored"] is True
            assert persistence["rejected"] is None
            assert second.planner.calibrator.observations == observations
            assert second.submit(spec)["planned_algorithm"]

    def test_corrupt_snapshot_starts_cold_and_still_serves(
        self, small_uniform_dataset, tmp_path
    ):
        path = tmp_path / "calibration.json"
        path.write_text('{"format": "repro-calibration", "version": 1, "cal')
        with make_service(
            small_uniform_dataset, calibration_path=str(path)
        ) as service:
            persistence = service.stats()["planner"]["persistence"]
            assert persistence["restored"] is False
            assert "JSON" in persistence["rejected"]
            response = service.submit(
                {"keywords": ["w0001"], "k": 3, "radius": 2.0}
            )
            assert response["results"] is not None
        # The shutdown checkpoint replaced the corrupt file with a valid one.
        assert load_calibration(str(path)) is not None

    def test_version_mismatch_starts_cold(
        self, small_uniform_dataset, tmp_path
    ):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps({
            "format": "repro-calibration", "version": 999, "calibration": {},
        }))
        with make_service(
            small_uniform_dataset, calibration_path=str(path)
        ) as service:
            persistence = service.stats()["planner"]["persistence"]
            assert persistence["restored"] is False
            assert "version" in persistence["rejected"]

    def test_manual_checkpoint_counts(self, small_uniform_dataset, tmp_path):
        path = tmp_path / "calibration.json"
        with make_service(
            small_uniform_dataset, calibration_path=str(path)
        ) as service:
            assert service.checkpoint() == str(path)
            persistence = service.stats()["planner"]["persistence"]
            assert persistence["checkpoints"] == 1
            assert persistence["last_checkpoint_unix"] is not None

    def test_periodic_checkpoints_write(self, small_uniform_dataset, tmp_path):
        path = tmp_path / "calibration.json"
        with make_service(
            small_uniform_dataset,
            calibration_path=str(path),
            checkpoint_interval_seconds=0.05,
        ) as service:
            service.submit({"keywords": ["w0001"], "k": 2, "radius": 2.0})
            deadline = threading.Event()
            for _ in range(100):
                if path.exists():
                    break
                deadline.wait(0.05)
            assert path.exists()

    def test_no_calibration_path_never_writes(self, small_uniform_dataset):
        with make_service(small_uniform_dataset) as service:
            assert service.checkpoint() is None

    def test_unwritable_path_does_not_abort_shutdown(
        self, small_uniform_dataset, tmp_path
    ):
        """A failed final checkpoint must still close every engine."""
        path = tmp_path / "gone" / "calibration.json"  # directory missing
        service = make_service(
            small_uniform_dataset, calibration_path=str(path)
        )
        service.start()
        service.submit({"keywords": ["w0001"], "k": 2, "radius": 2.0})
        assert service.checkpoint() is None
        error = service.stats()["planner"]["persistence"]["last_error"]
        assert error is not None
        service.shutdown()  # must not raise
        assert service.closed
        assert not path.exists()


class TestServiceStats:
    def test_stats_shape(self, service):
        service.submit({"keywords": ["w0001"], "k": 2, "radius": 2.0})
        stats = service.stats()
        assert stats["requests"]["submitted"] == 1
        assert stats["requests"]["completed"] == 1
        assert stats["dataset"]["data_objects"] == 500
        assert stats["planner"]["mode"] == "on"
        assert "calibration" in stats["planner"]
        assert stats["batching"]["batches"] == 1
        assert stats["engines"]["count"] == 1
        assert json.dumps(stats)


class TestCalibrationSeeding:
    SPEC = {"keywords": ["w0001"], "k": 3, "radius": 2.0, "algorithm": "auto"}

    def trained_snapshot(self, dataset, path):
        """A global snapshot written by a donor service; its observations."""
        with make_service(
            dataset, calibration_path=str(path), result_cache_capacity=0
        ) as donor:
            donor.submit(self.SPEC)
            donor.submit(self.SPEC)
            return donor.planner.calibrator.observations

    def test_cold_scope_seeds_from_global_snapshot(
        self, small_uniform_dataset, tmp_path
    ):
        global_path = tmp_path / "global.json"
        observations = self.trained_snapshot(small_uniform_dataset, global_path)
        before = global_path.read_bytes()
        shard_path = tmp_path / "shard.json"
        with make_service(
            small_uniform_dataset,
            calibration_path=str(shard_path),
            calibration_seed_path=str(global_path),
        ) as seeded:
            persistence = seeded.stats()["planner"]["persistence"]
            assert persistence["seeded"] is True
            assert persistence["restored"] is True
            assert persistence["seed_path"] == str(global_path)
            assert seeded.planner.calibrator.observations == observations
        # Checkpoints go to the scope's own path; the seed is read-only.
        assert shard_path.exists()
        assert global_path.read_bytes() == before

    def test_existing_scope_ignores_seed(self, small_uniform_dataset, tmp_path):
        global_path = tmp_path / "global.json"
        self.trained_snapshot(small_uniform_dataset, global_path)
        shard_path = tmp_path / "shard.json"
        with make_service(
            small_uniform_dataset,
            calibration_path=str(shard_path),
            calibration_seed_path=str(global_path),
        ):
            pass  # first start seeds, shutdown checkpoints shard_path
        with make_service(
            small_uniform_dataset,
            calibration_path=str(shard_path),
            calibration_seed_path=str(global_path),
        ) as second:
            persistence = second.stats()["planner"]["persistence"]
            assert persistence["restored"] is True
            assert persistence["seeded"] is False

    def test_seed_without_primary_path_still_warms(
        self, small_uniform_dataset, tmp_path
    ):
        global_path = tmp_path / "global.json"
        observations = self.trained_snapshot(small_uniform_dataset, global_path)
        with make_service(
            small_uniform_dataset, calibration_seed_path=str(global_path)
        ) as seeded:
            assert seeded.planner.calibrator.observations == observations
            assert seeded.stats()["planner"]["persistence"]["seeded"] is True
