"""Unit tests for the simulated-time cost model."""

from __future__ import annotations

import pytest

from repro.mapreduce.cluster import ClusterNode, SimulatedCluster
from repro.mapreduce.costmodel import CostModel, CostParameters
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import JobResult, ReduceTaskReport


def _make_result(map_inputs=1000, map_outputs=1000, shuffle_bytes=10_000,
                 reduce_work=(100, 200), num_map_tasks=10) -> JobResult:
    counters = Counters()
    counters.increment("map", "input_records", map_inputs)
    counters.increment("map", "output_records", map_outputs)
    counters.increment("shuffle", "records", map_outputs)
    counters.increment("shuffle", "bytes", shuffle_bytes)
    reports = []
    for index, work in enumerate(reduce_work):
        report = ReduceTaskReport(task_index=index, input_records=work, consumed_records=work)
        report.counters.increment("work", "score_computations", work)
        reports.append(report)
    return JobResult(
        job_name="test",
        outputs=[],
        counters=counters,
        reduce_reports=reports,
        num_map_tasks=num_map_tasks,
        num_reduce_tasks=len(reports),
    )


@pytest.fixture()
def small_cluster():
    return SimulatedCluster([ClusterNode("a", 4), ClusterNode("b", 4)])


class TestCostBreakdown:
    def test_total_is_sum_of_phases(self, small_cluster):
        model = CostModel(small_cluster)
        breakdown = model.estimate(_make_result())
        assert breakdown.total == pytest.approx(
            breakdown.startup + breakdown.map + breakdown.shuffle + breakdown.reduce
        )

    def test_as_dict_contains_all_phases(self, small_cluster):
        breakdown = CostModel(small_cluster).estimate(_make_result())
        assert set(breakdown.as_dict()) == {"startup", "map", "shuffle", "reduce", "total"}

    def test_simulated_seconds_equals_total(self, small_cluster):
        model = CostModel(small_cluster)
        result = _make_result()
        assert model.simulated_seconds(result) == pytest.approx(model.estimate(result).total)


class TestCostMonotonicity:
    def test_more_reduce_work_costs_more(self, small_cluster):
        model = CostModel(small_cluster)
        cheap = model.simulated_seconds(_make_result(reduce_work=(100, 100)))
        expensive = model.simulated_seconds(_make_result(reduce_work=(100_000, 100_000)))
        assert expensive > cheap

    def test_more_shuffle_bytes_cost_more(self, small_cluster):
        model = CostModel(small_cluster)
        cheap = model.simulated_seconds(_make_result(shuffle_bytes=1_000))
        expensive = model.simulated_seconds(_make_result(shuffle_bytes=10_000_000_000))
        assert expensive > cheap

    def test_more_map_input_costs_more(self, small_cluster):
        model = CostModel(small_cluster)
        cheap = model.simulated_seconds(_make_result(map_inputs=1_000))
        expensive = model.simulated_seconds(_make_result(map_inputs=500_000_000))
        assert expensive > cheap

    def test_startup_dominates_empty_job(self, small_cluster):
        params = CostParameters(job_startup=15.0)
        model = CostModel(small_cluster, params)
        breakdown = model.estimate(
            _make_result(map_inputs=0, map_outputs=0, shuffle_bytes=0, reduce_work=(0,))
        )
        assert breakdown.total == pytest.approx(15.0 + breakdown.reduce, rel=0.1)


class TestClusterInfluence:
    def test_bigger_cluster_is_faster_on_reduce_heavy_job(self):
        result = _make_result(reduce_work=tuple([50_000] * 64))
        small = CostModel(SimulatedCluster([ClusterNode("a", 2)]))
        large = CostModel(SimulatedCluster([ClusterNode(f"n{i}", 8) for i in range(8)]))
        assert large.simulated_seconds(result) < small.simulated_seconds(result)

    def test_default_cluster_is_papers_16_nodes(self):
        model = CostModel()
        assert len(model.cluster.nodes) == 16
