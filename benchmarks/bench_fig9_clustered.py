"""Figure 9 — Clustered (CL) synthetic dataset.

As in the paper, pSPQ is excluded from the sweep (its exhaustive per-cell
nested loop on the overloaded cells is orders of magnitude slower -- the paper
reports ~48 hours for the default setup); the two early-termination algorithms
are compared instead.  One benchmark documents the pSPQ blow-up on a reduced
workload so the asymmetry stays measurable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import execute

ALGORITHMS = ("espq-len", "espq-sco")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_default_setup(benchmark, clustered_spec, algorithm):
    result = benchmark(execute, clustered_spec, algorithm)
    assert len(result) <= clustered_spec.k


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9a_largest_grid(benchmark, clustered_spec, algorithm):
    result = benchmark(execute, clustered_spec, algorithm, grid_size=20)
    assert result.stats["num_cells"] == 400


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9b_ten_query_keywords(benchmark, clustered_spec, algorithm):
    result = benchmark(execute, clustered_spec, algorithm, num_keywords=10)
    assert result.stats["features_examined"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9c_largest_radius(benchmark, clustered_spec, algorithm):
    result = benchmark(execute, clustered_spec, algorithm, radius_fraction=1.0)
    assert result.stats["feature_duplicates"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9d_top_100(benchmark, clustered_spec, algorithm):
    result = benchmark(execute, clustered_spec, algorithm, k=100)
    assert len(result) <= 100


def test_fig9_pspq_is_much_slower_in_simulated_time(benchmark, clustered_spec):
    """The observation behind omitting pSPQ: on clustered data its simulated
    job time is far above eSPQsco's."""

    def run_both():
        pspq = execute(clustered_spec, "pspq")
        sco = execute(clustered_spec, "espq-sco")
        return pspq.stats["simulated_seconds"], sco.stats["simulated_seconds"]

    pspq_time, sco_time = benchmark(run_both)
    assert pspq_time > sco_time
