"""Durable planner calibration: state export, snapshot files, restore."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.engine import EngineConfig, SPQEngine
from repro.exceptions import CalibrationStateError, JobConfigurationError
from repro.model.query import SpatialPreferenceQuery
from repro.planner import (
    CALIBRATION_FORMAT,
    CALIBRATION_VERSION,
    Calibrator,
    load_calibration,
    restore_calibration,
    save_calibration,
    try_restore_calibration,
)
from repro.planner.estimator import DEFAULT_WORK_FACTORS, WorkFactors

ALGORITHMS = ("pspq", "espq-len", "espq-sco")


def trained_calibrator(memory: int = 16, smoothing: float = 0.3) -> Calibrator:
    """A calibrator with several work, global and duplication entries."""
    calibrator = Calibrator(memory=memory, smoothing=smoothing)
    for offset, algorithm in enumerate(ALGORITHMS):
        for bucket in range(3):
            signature = (10, bucket, 1, 2)
            calibrator.observe_work(
                algorithm, signature,
                raw_copies=100.0 + offset, raw_pairs=400.0,
                actual_copies=80 + bucket, actual_examined=40 + offset,
                actual_pairs=120 + bucket,
            )
            calibrator.observe_reduce(
                algorithm, signature,
                predicted_seconds=5.0 + bucket, actual_seconds=4.0 + offset,
            )
    for rbucket in range(4):
        calibrator.observe_duplication(
            grid_size=10, rbucket=rbucket,
            estimated_copies=90.0, actual_copies=100 + rbucket,
        )
    return calibrator


def all_lookups(calibrator: Calibrator):
    """Every observable output of a calibrator, for equality comparison."""
    defaults = WorkFactors(examined=0.77, pairs=0.33)
    lookups = {}
    for algorithm in ALGORITHMS + ("never-seen",):
        for bucket in range(4):
            signature = (10, bucket, 1, 2)
            factors = calibrator.factors_for(algorithm, signature, defaults)
            lookups[(algorithm, signature)] = (
                factors.examined,
                factors.pairs,
                calibrator.reduce_scale_for(algorithm, signature),
            )
    for rbucket in range(5):
        lookups[("dup", rbucket)] = calibrator.duplication_scale(10, rbucket)
    return lookups


class TestStateRoundTrip:
    def test_lookups_identical_after_roundtrip(self):
        original = trained_calibrator()
        restored = Calibrator(memory=original.memory, smoothing=original.smoothing)
        restored.restore_state(original.state_dict())
        assert all_lookups(restored) == all_lookups(original)
        assert restored.observations == original.observations
        assert len(restored) == len(original)
        assert restored.snapshot() == original.snapshot()

    def test_state_is_json_serializable(self):
        state = trained_calibrator().state_dict()
        assert json.loads(json.dumps(state)) == state

    def test_restore_trims_to_own_memory(self):
        original = trained_calibrator(memory=16)
        small = Calibrator(memory=2, smoothing=0.3)
        small.restore_state(original.state_dict())
        assert len(small) == 2
        # Evicted signatures fall back to the (restored) global average,
        # which differs from cold defaults.
        defaults = DEFAULT_WORK_FACTORS["pspq"]
        factors = small.factors_for("pspq", (99, 0, 0, 0), defaults)
        assert factors != defaults

    def test_restore_preserves_lru_order(self):
        original = Calibrator(memory=8)
        for bucket in range(4):
            original.observe_duplication(10, bucket, 100.0, 150)
        # Touch bucket 0 so it becomes most recently used.
        original.duplication_scale(10, 0)
        restored = Calibrator(memory=8)
        restored.restore_state(original.state_dict())
        assert (
            list(restored.state_dict()["duplication"])
            == list(original.state_dict()["duplication"])
        )

    @pytest.mark.parametrize("garbage", [
        "not a mapping",
        {"work": "nope"},
        {"work": [{"algorithm": "pspq", "signature": [1, 2]}]},
        {"work": [{"algorithm": "pspq", "signature": [1, 2, 3, "x"]}]},
        {"duplication": [{"grid_size": "ten"}]},
        {"global_work": [{"no_algorithm": True}]},
        {"observations": "many"},
    ])
    def test_restore_rejects_garbage(self, garbage):
        calibrator = trained_calibrator()
        before = all_lookups(calibrator)
        with pytest.raises(CalibrationStateError):
            calibrator.restore_state(garbage)
        # Failed restore must leave the calibrator untouched.
        assert all_lookups(calibrator) == before


class TestSnapshotFiles:
    def test_save_load_roundtrip(self, tmp_path):
        calibrator = trained_calibrator()
        path = tmp_path / "calibration.json"
        payload = save_calibration(str(path), calibrator)
        assert payload["format"] == CALIBRATION_FORMAT
        assert payload["version"] == CALIBRATION_VERSION
        on_disk = json.loads(path.read_text())
        assert on_disk["calibration"] == calibrator.state_dict()
        assert load_calibration(str(path)) == calibrator.state_dict()

    def test_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "calibration.json"
        save_calibration(str(path), trained_calibrator())
        save_calibration(str(path), trained_calibrator())
        assert os.listdir(tmp_path) == ["calibration.json"]

    def test_restore_calibration_applies_state(self, tmp_path):
        original = trained_calibrator()
        path = tmp_path / "calibration.json"
        save_calibration(str(path), original)
        restored = Calibrator(memory=original.memory)
        restore_calibration(str(path), restored)
        assert all_lookups(restored) == all_lookups(original)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CalibrationStateError, match="cannot read"):
            load_calibration(str(tmp_path / "nope.json"))

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "calibration.json"
        save_calibration(str(path), trained_calibrator())
        payload = json.loads(path.read_text())
        payload["version"] = CALIBRATION_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CalibrationStateError, match="version"):
            load_calibration(str(path))

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(CalibrationStateError, match="format"):
            load_calibration(str(path))

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "calibration.json"
        save_calibration(str(path), trained_calibrator())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CalibrationStateError, match="JSON"):
            load_calibration(str(path))

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CalibrationStateError, match="JSON object"):
            load_calibration(str(path))

    def test_missing_calibration_key_rejected(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps({
            "format": CALIBRATION_FORMAT, "version": CALIBRATION_VERSION,
        }))
        with pytest.raises(CalibrationStateError, match="calibration"):
            load_calibration(str(path))

    def test_try_restore_reports_rejection_and_stays_cold(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("{truncated")
        calibrator = Calibrator()
        reason = try_restore_calibration(str(path), calibrator)
        assert reason is not None and "JSON" in reason
        assert calibrator.observations == 0

    def test_try_restore_missing_path_is_silent(self, tmp_path):
        calibrator = Calibrator()
        assert try_restore_calibration(None, calibrator) is None
        assert (
            try_restore_calibration(str(tmp_path / "absent.json"), calibrator)
            is None
        )


class TestEngineSnapshotRestore:
    @pytest.fixture()
    def engines(self, small_uniform_dataset):
        data, features = small_uniform_dataset
        first = SPQEngine(data, features)
        second = SPQEngine(data, features)
        yield first, second
        first.close()
        second.close()

    def test_restored_engine_decides_like_the_original(self, engines):
        first, second = engines
        query = SpatialPreferenceQuery.create(k=5, radius=2.0, keywords={"w0001"})
        for _ in range(3):
            first.execute(query, algorithm="auto", grid_size=10)
        second.restore_planner(first.planner_snapshot())

        statistics_first = first.planner.collect(first.get_index(10), query, 10)
        statistics_second = second.planner.collect(second.get_index(10), query, 10)
        decision_first = first.planner.decide(statistics_first)
        decision_second = second.planner.decide(statistics_second)
        assert decision_second.algorithm == decision_first.algorithm
        assert decision_second.calibrated is True

    def test_post_restore_execution_matches(self, engines):
        """Same workload, pre-restart vs restored engine: same decisions.

        Decision equality needs equal *calibration* state (the snapshot)
        and equal *index* state (cached Lemma-1 lists feed the duplication
        estimate), so the restored engine's index is pre-warmed with
        exactly the duplication lists the warm-up pass cached on the
        original.  From there both engines run the workload in lockstep
        and must stay identical: same decisions, same estimate vectors.
        """
        first, second = engines
        queries = [
            SpatialPreferenceQuery.create(k=k, radius=radius, keywords={word})
            for k, radius, word in [
                (1, 1.0, "w0002"), (5, 2.0, "w0003"), (10, 3.0, "w0002"),
            ]
        ]
        for query in queries:  # warm-up pass on the original only
            first.execute(query, algorithm="auto", grid_size=10)
        second.restore_planner(first.planner_snapshot())
        index_second = second.get_index(10)
        for query in queries:
            candidates = index_second.candidate_positions(query.keywords)
            index_second.feature_cells(query.radius, candidates)

        for query in queries:
            stats_first = first.execute(query, algorithm="auto", grid_size=10).stats
            stats_second = second.execute(query, algorithm="auto", grid_size=10).stats
            assert (
                stats_second["planned_algorithm"]
                == stats_first["planned_algorithm"]
            )
            assert (
                stats_second["planner_estimates"]
                == stats_first["planner_estimates"]
            )
            assert stats_second["planner_calibrated"] is True

    def test_snapshot_requires_planner_on(self, small_uniform_dataset, monkeypatch):
        monkeypatch.delenv("REPRO_PLANNER", raising=False)
        data, features = small_uniform_dataset
        engine = SPQEngine(
            data, features, config=EngineConfig(planner_mode="off")
        )
        with pytest.raises(JobConfigurationError, match="disabled"):
            engine.planner_snapshot()
        with pytest.raises(JobConfigurationError, match="disabled"):
            engine.restore_planner({})
        engine.close()


class TestCalibrationSeeding:
    """``seed_path``: shard calibrators warm-started from a global snapshot."""

    def test_seed_used_when_primary_absent(self, tmp_path):
        seed = tmp_path / "global.json"
        save_calibration(str(seed), trained_calibrator())
        calibrator = Calibrator()
        reason = try_restore_calibration(
            str(tmp_path / "shard.json"), calibrator, seed_path=str(seed)
        )
        assert reason is None
        assert all_lookups(calibrator) == all_lookups(trained_calibrator())

    def test_primary_wins_over_seed(self, tmp_path):
        primary_calibrator = trained_calibrator(smoothing=0.3)
        seed_calibrator = trained_calibrator(smoothing=0.7)
        assert all_lookups(primary_calibrator) != all_lookups(seed_calibrator)
        primary = tmp_path / "shard.json"
        seed = tmp_path / "global.json"
        save_calibration(str(primary), primary_calibrator)
        save_calibration(str(seed), seed_calibrator)
        calibrator = Calibrator()
        assert try_restore_calibration(
            str(primary), calibrator, seed_path=str(seed)
        ) is None
        assert all_lookups(calibrator) == all_lookups(primary_calibrator)

    def test_rejected_seed_reports_and_stays_cold(self, tmp_path):
        seed = tmp_path / "global.json"
        seed.write_text("{truncated")
        calibrator = Calibrator()
        reason = try_restore_calibration(
            str(tmp_path / "shard.json"), calibrator, seed_path=str(seed)
        )
        assert reason is not None and "seed rejected" in reason
        assert calibrator.observations == 0

    def test_rejected_primary_never_falls_back_to_seed(self, tmp_path):
        # A corrupt primary is a real problem to surface, not a cue to
        # silently serve from fleet-wide estimates instead.
        primary = tmp_path / "shard.json"
        primary.write_text("{truncated")
        seed = tmp_path / "global.json"
        save_calibration(str(seed), trained_calibrator())
        calibrator = Calibrator()
        reason = try_restore_calibration(
            str(primary), calibrator, seed_path=str(seed)
        )
        assert reason is not None and "seed" not in reason
        assert calibrator.observations == 0

    def test_seed_file_never_written(self, tmp_path):
        seed = tmp_path / "global.json"
        save_calibration(str(seed), trained_calibrator())
        before = seed.read_bytes()
        calibrator = Calibrator()
        try_restore_calibration(
            str(tmp_path / "shard.json"), calibrator, seed_path=str(seed)
        )
        assert seed.read_bytes() == before

    def test_missing_both_is_silent(self, tmp_path):
        calibrator = Calibrator()
        assert try_restore_calibration(
            str(tmp_path / "shard.json"),
            calibrator,
            seed_path=str(tmp_path / "global.json"),
        ) is None
        assert calibrator.observations == 0
