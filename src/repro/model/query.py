"""The spatial preference query using keywords, ``q(k, r, W)``.

Section 3.1 of the paper: a query consists of the number ``k`` of data
objects to retrieve, the neighbourhood distance threshold ``r`` and a set of
query keywords ``q.W`` evaluated against feature-object keyword sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.exceptions import InvalidQueryError


@dataclass(frozen=True)
class SpatialPreferenceQuery:
    """Immutable query object ``q(k, r, W)``.

    Attributes:
        k: Number of top data objects to return (``k >= 1``).
        radius: Neighbourhood distance threshold ``r`` (``r >= 0``).
        keywords: Query keyword set ``q.W`` (non-empty).
    """

    k: int
    radius: float
    keywords: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not isinstance(self.keywords, frozenset):
            object.__setattr__(self, "keywords", frozenset(self.keywords))
        if self.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {self.k}")
        if self.radius < 0:
            raise InvalidQueryError(f"radius must be >= 0, got {self.radius}")
        if not self.keywords:
            raise InvalidQueryError("query keyword set q.W must not be empty")

    @property
    def keyword_count(self) -> int:
        """Number of query keywords ``|q.W|``."""
        return len(self.keywords)

    @classmethod
    def create(cls, k: int, radius: float, keywords: Iterable[str]) -> "SpatialPreferenceQuery":
        """Convenience constructor accepting any keyword iterable."""
        return cls(k=k, radius=radius, keywords=frozenset(keywords))

    def describe(self) -> str:
        """Human-readable one-line description of the query."""
        kw = ", ".join(sorted(self.keywords))
        return f"top-{self.k} within r={self.radius} for keywords {{{kw}}}"
