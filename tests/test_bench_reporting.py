"""Tests for ASCII chart rendering and reducer load-balance statistics."""

from __future__ import annotations

import pytest

from repro.bench.harness import SweepPoint, SweepResult
from repro.bench.reporting import (
    ascii_chart,
    compare_load_balance,
    load_balance,
)
from repro.core.jobs import PSPQJob
from repro.datagen.synthetic import SyntheticDatasetConfig, generate_clustered, generate_uniform
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import JobResult, LocalJobRunner, ReduceTaskReport
from repro.model.query import SpatialPreferenceQuery
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import UniformGrid
from repro.text.vocabulary import Vocabulary


def _sweep():
    sweep = SweepResult(experiment="demo", parameter="k")
    for value, algorithm, seconds in [
        (5, "pspq", 100.0), (5, "espq-sco", 10.0),
        (10, "pspq", 200.0), (10, "espq-sco", 12.0),
    ]:
        sweep.points.append(
            SweepPoint(
                parameter_value=value, algorithm=algorithm, simulated_seconds=seconds,
                wall_seconds=0.0, features_examined=0, score_computations=0,
                shuffled_records=0,
            )
        )
    return sweep


def _job_result(work_per_task):
    reports = []
    for index, work in enumerate(work_per_task):
        report = ReduceTaskReport(task_index=index)
        report.counters.increment("work", "score_computations", work)
        reports.append(report)
    return JobResult(
        job_name="synthetic", outputs=[], counters=Counters(),
        reduce_reports=reports, num_map_tasks=1, num_reduce_tasks=len(reports),
    )


class TestAsciiChart:
    def test_chart_contains_all_algorithms_and_values(self):
        chart = ascii_chart(_sweep())
        assert "pspq" in chart and "espq-sco" in chart
        assert "k = 5" in chart and "k = 10" in chart

    def test_longest_bar_belongs_to_largest_value(self):
        chart = ascii_chart(_sweep(), width=20)
        bars = {
            line.strip().split()[0]: line.count("#")
            for line in chart.splitlines() if "#" in line
        }
        assert max(bars.values()) == bars["pspq"]

    def test_log_scale_compresses_ratios(self):
        linear = ascii_chart(_sweep(), width=40, log_scale=False)
        log = ascii_chart(_sweep(), width=40, log_scale=True)

        def bar_lengths(chart):
            return [line.count("#") for line in chart.splitlines() if "#" in line]

        assert max(bar_lengths(log)) <= max(bar_lengths(linear))
        assert min(bar_lengths(log)) >= min(bar_lengths(linear))

    def test_empty_sweep(self):
        chart = ascii_chart(SweepResult(experiment="empty", parameter="k"))
        assert "empty" in chart


class TestLoadBalance:
    def test_balanced_work(self):
        stats = load_balance(_job_result([10, 10, 10, 10]))
        assert stats.imbalance == pytest.approx(1.0)
        assert stats.gini == pytest.approx(0.0)
        assert stats.idle_tasks == 0
        assert stats.total_work == 40

    def test_skewed_work(self):
        stats = load_balance(_job_result([100, 0, 0, 0]))
        assert stats.imbalance == pytest.approx(4.0)
        assert stats.gini > 0.7
        assert stats.idle_tasks == 3

    def test_empty_job(self):
        stats = load_balance(_job_result([]))
        assert stats.num_tasks == 0
        assert stats.total_work == 0

    def test_all_idle(self):
        stats = load_balance(_job_result([0, 0]))
        assert stats.gini == 0.0
        assert stats.idle_tasks == 2

    def test_comparison_table(self):
        table = compare_load_balance({
            "uniform": _job_result([10, 10]),
            "clustered": _job_result([100, 1]),
        })
        assert "uniform" in table and "clustered" in table
        assert "max/mean" in table

    def test_clustered_data_is_more_imbalanced_than_uniform(self):
        """The observation behind the paper's Figure 9 discussion (§7.2.4)."""

        def run_pspq(generator):
            data, features = generator(SyntheticDatasetConfig(num_objects=2_000, seed=17))
            vocabulary = Vocabulary.from_features(features)
            query = SpatialPreferenceQuery.create(
                k=5, radius=2.0, keywords=set(vocabulary.most_frequent(3))
            )
            grid = UniformGrid.square(BoundingBox(0, 0, 100, 100), 8)
            runner = LocalJobRunner(num_reducers=grid.num_cells)
            return runner.run(PSPQJob(query, grid), data + features)

        uniform_stats = load_balance(run_pspq(generate_uniform))
        clustered_stats = load_balance(run_pspq(generate_clustered))
        assert clustered_stats.imbalance > uniform_stats.imbalance
        assert clustered_stats.gini > uniform_stats.gini
        assert clustered_stats.idle_tasks > uniform_stats.idle_tasks
