"""LRU cache of :class:`~repro.index.dataset_index.DatasetIndex` instances.

The engine keys entries by ``(grid_size, dataset_version)``: the grid size
because every index is specialised for one grid, the dataset version because
an index built over a stale dataset snapshot must never serve a query after
the datasets changed.  Bumping the version (``SPQEngine.invalidate_indexes``)
makes every existing key unreachable, and :meth:`IndexCache.invalidate`
drops the entries themselves.

One cache may be *shared* by several engines over the same datasets (the
query service hands one cache to its whole engine pool, so an index built
for any pooled engine serves all of them): all public methods take an
internal lock, and a build happens under the lock so concurrent requests
for the same grid size produce exactly one index.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.index.dataset_index import DatasetIndex


@dataclass
class CacheStats:
    """Hit/miss accounting shared by every bounded cache in the system.

    Used by the :class:`IndexCache` here and the result cache of the query
    service (:mod:`repro.server.cache`), so ``/stats`` consumers see one
    consistent shape for every cache counter block.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for stats reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


#: Backwards-compatible name of the index cache's stats block.
IndexCacheStats = CacheStats


class IndexCache:
    """Bounded LRU mapping of cache keys to built dataset indexes.

    Args:
        capacity: Maximum number of indexes kept alive; the least recently
            used entry is evicted first.  Each index holds per-radius
            duplication lists, so the capacity bounds memory at roughly
            ``capacity * (|O| + |F| * radii)`` references.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        #: key -> latch of an in-progress build; waiters block on the latch
        #: instead of the map lock, so hits on other keys never stall.
        self._building: Dict[Hashable, threading.Event] = {}
        self._entries: "OrderedDict[Hashable, DatasetIndex]" = OrderedDict()
        self.stats = IndexCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get_or_build(
        self, key: Hashable, builder: Callable[[], DatasetIndex]
    ) -> "tuple[DatasetIndex, bool]":
        """Return ``(index, was_hit)``, building and inserting on a miss.

        Builds run *outside* the map lock, coordinated by a per-key latch:
        of several sharing engines missing on the same key concurrently,
        exactly one pays the build while the rest wait on that key's latch
        and then hit -- lookups and builds of other keys proceed
        unblocked throughout.
        """
        while True:
            with self._lock:
                index = self._entries.get(key)
                if index is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return index, True
                latch = self._building.get(key)
                if latch is None:
                    latch = self._building[key] = threading.Event()
                    break  # this caller owns the build
            # Another caller is building this key: wait, then re-check (the
            # loop handles build failure or an immediate eviction).
            latch.wait()
        try:
            index = builder()
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            latch.set()
            raise
        with self._lock:
            self.stats.misses += 1
            self._entries[key] = index
            evicted: list[DatasetIndex] = []
            while len(self._entries) > self.capacity:
                evicted.append(self._entries.popitem(last=False)[1])
                self.stats.evictions += 1
            self._building.pop(key, None)
        latch.set()
        # Outside the lock: releasing unpublishes an index's shared-memory
        # plane (see DatasetIndex.release), which no longer needs the map.
        for old in evicted:
            _release(old)
        return index, False

    def invalidate(self, key: Optional[Hashable] = None) -> int:
        """Drop one entry (or all entries when ``key`` is None).

        Dropped indexes are released -- their shared-memory planes are
        unpublished so no ``/dev/shm`` segment outlives its cache entry.
        Returns the number of entries removed.
        """
        with self._lock:
            if key is None:
                dropped = list(self._entries.values())
                self._entries.clear()
            else:
                entry = self._entries.pop(key, None)
                dropped = [entry] if entry is not None else []
            removed = len(dropped)
            self.stats.invalidations += removed
        for entry in dropped:
            _release(entry)
        return removed

    def release_all(self) -> None:
        """Release shared resources of every cached index, keeping the entries.

        Engine/service shutdown calls this: the indexes stay cached (an
        engine remains usable after ``close()``) but their shared-memory
        planes are unpublished; an index that serves another query simply
        republishes its plane on demand.
        """
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            _release(entry)


def _release(index: DatasetIndex) -> None:
    """Release a dropped entry's shared resources (tolerates test doubles)."""
    release = getattr(index, "release", None)
    if release is not None:
        release()
