"""A-priori cost estimation for the three MapReduce SPQ algorithms.

The estimator predicts what the simulated cost model *would* report for a
query under each algorithm, before running any of them, from statistics a
:class:`~repro.index.dataset_index.DatasetIndex` already holds:

* the per-cell data-object histogram (exact, computed at index build),
* the candidate feature set of the query -- the union of the inverted
  index's posting lists -- and the home-cell histogram of those candidates,
* a duplication estimate per radius: the observed mean of cached Lemma-1
  lists when available, otherwise the geometric expectation, and
* the mean serialized feature-record size (for shuffle bytes).

Under the simulated cost model the three algorithms share identical startup
and shuffle costs for the same query (they emit the same records with the
same sizes); what separates them is the *work*: eSPQsco's map phase computes
the Jaccard score per kept feature (and per emitted copy's key), and on the
reduce side each algorithm differs in how many shuffled feature copies its
reducers examine before terminating and how many (data object, feature)
score computations they perform.  The reduce quantities
are modelled as fractions of the shuffled copies and of the candidate
pair count -- the :class:`WorkFactors` -- with per-algorithm defaults that
the calibration loop (:mod:`repro.planner.calibration`) refines from the
counters of previously executed queries.

Per-cell estimated reduce costs are scheduled on the simulated cluster with
the exact :class:`~repro.mapreduce.costmodel.CostModel` formulas, so the
estimate vector is directly comparable to the ``simulated_seconds`` a real
run reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.index.dataset_index import DatasetIndex
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.costmodel import CostBreakdown, CostModel, CostParameters
from repro.mapreduce.runtime import DEFAULT_SPLIT_SIZE
from repro.model.query import SpatialPreferenceQuery

#: The algorithms the planner chooses between (the three MapReduce jobs;
#: the centralized oracle is never planned -- it bypasses the cluster).
PLANNED_ALGORITHMS = ("pspq", "espq-len", "espq-sco")

#: Serialized size of one data-object shuffle record (see
#: ``_SPQJobBase.estimated_record_size``).
DATA_RECORD_BYTES = 24


@dataclass(frozen=True)
class WorkFactors:
    """Reduce-work fractions of one algorithm.

    Attributes:
        examined: Fraction of the shuffled feature copies the reducers
            actually read before (early) termination.  1.0 for an algorithm
            that never terminates early.
        pairs: Fraction of the candidate (feature copy, co-located data
            object) pairs that incur a score computation.
    """

    examined: float
    pairs: float


#: Cold-start priors, refined by calibration.  pSPQ always reads every copy
#: and its threshold check skips roughly a third of the nested loops on
#: mixed workloads; eSPQlen reads most copies (its length bound fires late)
#: but computes fewer pairs; eSPQsco stops after k reported objects per
#: cell, so it reads few copies and scores few pairs.
DEFAULT_WORK_FACTORS: Dict[str, WorkFactors] = {
    "pspq": WorkFactors(examined=1.0, pairs=0.65),
    "espq-len": WorkFactors(examined=0.85, pairs=0.5),
    "espq-sco": WorkFactors(examined=0.3, pairs=0.12),
}


@dataclass
class QueryStatistics:
    """Everything the estimator knows about one (query, index) pair.

    Collected once per planned query by :func:`collect_statistics`; the
    candidate positions are reused for :meth:`DatasetIndex.prepare` so the
    union of posting lists is computed exactly once.
    """

    query: SpatialPreferenceQuery
    grid_size: int
    num_cells: int
    cell_side: float
    num_data: int
    num_features: int
    candidate_positions: List[int]
    candidate_cells: Dict[int, int]
    data_cell_counts: Mapping[int, int]
    duplication: float
    avg_feature_bytes: float

    @property
    def num_candidates(self) -> int:
        """Number of candidate features after keyword pruning."""
        return len(self.candidate_positions)


def collect_statistics(
    index: DatasetIndex, query: SpatialPreferenceQuery, grid_size: int
) -> QueryStatistics:
    """Gather the planner's inputs from the index (O(candidates + keywords))."""
    candidates = index.candidate_positions(query.keywords)
    return QueryStatistics(
        query=query,
        grid_size=grid_size,
        num_cells=index.grid.num_cells,
        cell_side=(index.grid.cell_width + index.grid.cell_height) / 2.0,
        num_data=index.num_data,
        num_features=index.num_features,
        candidate_positions=candidates,
        candidate_cells=index.candidate_cell_counts(candidates),
        data_cell_counts=index.data_cell_counts,
        duplication=index.duplication_estimate(query.radius),
        avg_feature_bytes=index.average_feature_bytes,
    )


class CostEstimator:
    """Prices :class:`QueryStatistics` into per-algorithm cost breakdowns."""

    def __init__(
        self,
        cluster: Optional[SimulatedCluster] = None,
        parameters: Optional[CostParameters] = None,
        split_size: int = DEFAULT_SPLIT_SIZE,
    ) -> None:
        self.model = CostModel(cluster, parameters)
        self.split_size = split_size

    # ------------------------------------------------------------------ #

    def raw_work(self, stats: QueryStatistics) -> Tuple[float, float]:
        """Factor-free work bases: (shuffled feature copies, candidate pairs).

        ``copies`` is the expected number of feature records reaching the
        reducers; ``pairs`` the expected number of (feature copy, co-located
        data object) combinations.  An algorithm's work estimate is these
        bases scaled by its :class:`WorkFactors`.
        """
        dup = self._clamped_duplication(stats, 1.0)
        copies = stats.num_candidates * dup
        data = stats.data_cell_counts
        pairs = dup * sum(
            count * data.get(cell, 0)
            for cell, count in stats.candidate_cells.items()
        )
        return copies, pairs

    def estimate(
        self,
        stats: QueryStatistics,
        factors: Mapping[str, WorkFactors],
        duplication_scale: float = 1.0,
    ) -> Dict[str, CostBreakdown]:
        """Predicted cost breakdown per algorithm (shared map/shuffle phases).

        ``duplication_scale`` is the calibration correction on the
        duplication estimate (1.0 when uncalibrated).
        """
        return {
            algorithm: self.estimate_one(
                stats, algorithm, factors[algorithm], duplication_scale
            )
            for algorithm in PLANNED_ALGORITHMS
        }

    def estimate_one(
        self,
        stats: QueryStatistics,
        algorithm: str,
        work: WorkFactors,
        duplication_scale: float = 1.0,
    ) -> CostBreakdown:
        """Predicted cost breakdown of one algorithm."""
        dup = self._clamped_duplication(stats, duplication_scale)
        copies = stats.num_candidates * dup
        map_inputs = stats.num_data + stats.num_candidates
        map_outputs = stats.num_data + copies
        num_map_tasks = max(1, -(-map_inputs // self.split_size))
        shuffle_bytes = (
            stats.num_data * DATA_RECORD_BYTES + copies * stats.avg_feature_bytes
        )
        # Per-cell reduce tasks: only cells holding at least one candidate
        # feature run (feature-free cells are skipped by the batch runner).
        data = stats.data_cell_counts
        reduce_costs = [
            self.model.reduce_task_cost(
                input_records=data.get(cell, 0) + count * dup,
                work_units=(
                    work.examined * count * dup
                    + work.pairs * count * dup * data.get(cell, 0)
                ),
            )
            for cell, count in stats.candidate_cells.items()
        ]
        # eSPQsco computes the Jaccard score in the map phase: once for
        # the shipped value of each kept feature, once per copy's key.
        map_work = copies + stats.num_candidates if algorithm == "espq-sco" else 0.0
        return self.model.compose(
            map_inputs,
            map_outputs,
            num_map_tasks,
            shuffle_bytes,
            reduce_costs,
            map_work_units=map_work,
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _clamped_duplication(stats: QueryStatistics, scale: float) -> float:
        """Scaled duplication, kept in the feasible [1, num_cells] range."""
        return min(max(stats.duplication * scale, 1.0), float(stats.num_cells))
