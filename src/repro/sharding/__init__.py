"""Sharded scatter-gather serving: spatial partitioning + query router.

Public surface:

* :func:`~repro.sharding.partition.partition_datasets` /
  :func:`~repro.sharding.partition.shard_layout` -- the extent-splitting
  partitioner (Lemma-1 feature replication at shard granularity).
* :class:`~repro.sharding.router.ShardRouter` /
  :class:`~repro.sharding.router.ShardingConfig` -- the scatter-gather
  front-end behind ``repro serve --shards N``.

See ``docs/sharding.md`` for the shard lifecycle, routing rule, hot-swap
quiesce protocol and tuning guidance.
"""

from repro.sharding.partition import (
    ShardDataset,
    ShardingPlan,
    ShardingStats,
    partition_datasets,
    shard_layout,
)
from repro.sharding.router import ShardRouter, ShardingConfig

__all__ = [
    "ShardDataset",
    "ShardRouter",
    "ShardingConfig",
    "ShardingPlan",
    "ShardingStats",
    "partition_datasets",
    "shard_layout",
]
