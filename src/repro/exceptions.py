"""Exception hierarchy for the SPQ reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to discriminate between configuration problems,
data-format problems and engine failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class InvalidQueryError(ReproError):
    """A query was constructed with invalid parameters (k <= 0, r < 0, ...)."""


class OverloadError(ReproError):
    """The service shed a request instead of serving it (HTTP 429).

    Raised by the admission controller when the bounded admission queue
    is full, when a request arrives with its deadline already blown, or
    when a queued request's deadline expires before a dispatcher reaches
    it.  Carries the machine-readable fields of the 429 response body
    (``{"shed": true, "retry_after_ms": ...}``) so every transport --
    HTTP front-end, shard router, cluster router -- sheds with the same
    contract."""

    def __init__(
        self,
        message: str,
        reason: str = "overload",
        retry_after_ms: float = 50.0,
    ) -> None:
        super().__init__(message)
        #: Why the request was shed: ``"queue_full"`` or ``"deadline"``.
        self.reason = reason
        #: Client backoff hint in milliseconds (always > 0).
        self.retry_after_ms = retry_after_ms


class InvalidGridError(ReproError):
    """A grid specification is invalid (non-positive cell count, bad extent)."""


class DatasetFormatError(ReproError):
    """A dataset file or record could not be parsed."""


class JobConfigurationError(ReproError):
    """A MapReduce job specification is incomplete or inconsistent."""


class JobExecutionError(ReproError):
    """A MapReduce job failed while executing a map or reduce task."""


class ClusterConfigurationError(ReproError):
    """A simulated cluster was configured with invalid resources."""


class HDFSError(ReproError):
    """An error in the simulated HDFS layer (missing file, bad block size)."""


class AnalysisError(ReproError):
    """A theoretical-analysis helper received parameters outside its domain."""


class CalibrationStateError(ReproError):
    """A persisted planner-calibration snapshot could not be used.

    Raised when loading a calibration file that is missing, truncated,
    not valid JSON, carries an unknown format name or version, or whose
    payload fails structural validation.  Callers that can start cold
    (the query service does) should catch this and continue without the
    snapshot rather than refusing to start."""


class DatasetUpdateError(ReproError):
    """An incremental dataset update (append/delete) is invalid.

    Raised for appends that duplicate a live oid, appends outside the
    served extent (the grid is pinned to it; clamped ``locate`` calls
    would silently break the Lemma-1 duplication geometry), and
    structurally empty or malformed update batches."""


class ResultIntegrityError(ReproError):
    """A job produced output referencing an object unknown to the engine.

    This indicates corrupted job output or datasets mutated behind the
    engine's back (without ``SPQEngine.invalidate_indexes`` /
    ``set_datasets``); silently fabricating placeholder objects would mask
    the bug, so the engine raises instead."""
