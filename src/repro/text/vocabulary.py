"""Vocabulary: the keyword dictionary of a feature dataset.

The experimental section of the paper reports dictionary sizes (88,706
keywords for Twitter, 34,716 for Flickr, 1,000 for the synthetic datasets) and
generates queries by picking random keywords from the vocabulary of the
respective dataset.  :class:`Vocabulary` supports exactly those uses: building
a dictionary from a feature dataset, inspecting keyword frequencies, and
sampling query keywords (uniformly, by highest frequency or by lowest
frequency -- the three strategies mentioned in Section 7.1).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.model.objects import FeatureObject


class Vocabulary:
    """Keyword dictionary with document frequencies."""

    def __init__(self, frequencies: Optional[Dict[str, int]] = None) -> None:
        self._frequencies: Counter = Counter(frequencies or {})

    @classmethod
    def from_features(cls, features: Iterable[FeatureObject]) -> "Vocabulary":
        """Build the dictionary of all keywords appearing in a feature dataset."""
        counter: Counter = Counter()
        for feature in features:
            counter.update(feature.keywords)
        return cls(dict(counter))

    @classmethod
    def from_words(cls, words: Iterable[str]) -> "Vocabulary":
        """Build a vocabulary from a plain word list (frequency 1 each unless repeated)."""
        return cls(dict(Counter(words)))

    def __len__(self) -> int:
        return len(self._frequencies)

    def __contains__(self, word: str) -> bool:
        return word in self._frequencies

    def frequency(self, word: str) -> int:
        """Number of feature objects containing ``word`` (0 if unknown)."""
        return self._frequencies.get(word, 0)

    def words(self) -> List[str]:
        """All distinct keywords, sorted for determinism."""
        return sorted(self._frequencies)

    def most_frequent(self, n: int) -> List[str]:
        """The ``n`` most frequent keywords (ties broken alphabetically)."""
        ordered = sorted(self._frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        return [word for word, _ in ordered[:n]]

    def least_frequent(self, n: int) -> List[str]:
        """The ``n`` least frequent keywords (ties broken alphabetically)."""
        ordered = sorted(self._frequencies.items(), key=lambda kv: (kv[1], kv[0]))
        return [word for word, _ in ordered[:n]]

    def sample(
        self,
        n: int,
        rng: Optional[random.Random] = None,
        strategy: str = "random",
    ) -> List[str]:
        """Sample ``n`` query keywords.

        Args:
            n: Number of keywords to sample (capped at the vocabulary size).
            rng: Random generator for reproducibility; a fresh one is created
                when omitted.
            strategy: ``"random"`` (uniform without replacement, the paper's
                default query generation), ``"frequent"`` (most frequent
                words) or ``"rare"`` (least frequent words).

        Raises:
            ValueError: for an unknown strategy or an empty vocabulary.
        """
        if not self._frequencies:
            raise ValueError("cannot sample from an empty vocabulary")
        n = min(n, len(self._frequencies))
        if strategy == "frequent":
            return self.most_frequent(n)
        if strategy == "rare":
            return self.least_frequent(n)
        if strategy != "random":
            raise ValueError(f"unknown sampling strategy: {strategy!r}")
        rng = rng or random.Random()
        return rng.sample(self.words(), n)

    def merge(self, other: "Vocabulary") -> "Vocabulary":
        """Return a new vocabulary combining the frequencies of both."""
        merged = Counter(self._frequencies)
        merged.update(other._frequencies)
        return Vocabulary(dict(merged))

    def as_dict(self) -> Dict[str, int]:
        """Copy of the underlying frequency table."""
        return dict(self._frequencies)
