"""Figure 6 — Twitter (TW) dataset: default setup plus the sweep endpoints.

Same structure as Figure 5, on the Twitter-like dataset (9.8 keywords per
feature object on average, larger dictionary).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import execute

ALGORITHMS = ("pspq", "espq-len", "espq-sco")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6_default_setup(benchmark, twitter_spec, algorithm):
    result = benchmark(execute, twitter_spec, algorithm)
    assert len(result) <= twitter_spec.k


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6a_largest_grid(benchmark, twitter_spec, algorithm):
    result = benchmark(execute, twitter_spec, algorithm, grid_size=24)
    assert result.stats["num_cells"] == 24 * 24


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6b_ten_query_keywords(benchmark, twitter_spec, algorithm):
    result = benchmark(execute, twitter_spec, algorithm, num_keywords=10)
    assert result.stats["features_examined"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6c_largest_radius(benchmark, twitter_spec, algorithm):
    result = benchmark(execute, twitter_spec, algorithm, radius_fraction=1.0)
    assert result.stats["feature_duplicates"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6d_top_100(benchmark, twitter_spec, algorithm):
    result = benchmark(execute, twitter_spec, algorithm, k=100)
    assert len(result) <= 100
