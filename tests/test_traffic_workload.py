"""Property tests for the seeded open-loop workload models."""

from __future__ import annotations

import math

import pytest

from repro.core.centralized import dataset_extent
from repro.core.engine import ALGORITHM_CHOICES
from repro.server.protocol import RequestDefaults, parse_query_spec
from repro.traffic import ScheduledRequest, TrafficModel, WorkloadConfig

DEFAULTS = RequestDefaults(k=10, radius=5.0, algorithm="espq-sco", grid_size=10)


@pytest.fixture(scope="module")
def dataset(small_uniform_dataset):
    data, features = small_uniform_dataset
    return data, features, dataset_extent(data, features)


class TestDeterminism:
    def test_same_seed_same_schedule(self, dataset):
        _, features, extent = dataset
        config = WorkloadConfig(
            seed=42,
            duration_seconds=2.0,
            rate=80.0,
            hotspot_fraction=0.4,
            burst_every_seconds=0.5,
            burst_size=6,
            slow_client_fraction=0.25,
            deadline_ms=300.0,
        )
        first = TrafficModel(features, extent, config).schedule()
        second = TrafficModel(
            features, extent, WorkloadConfig(**vars(config))
        ).schedule()
        assert first == second
        assert all(isinstance(r, ScheduledRequest) for r in first)

    def test_different_seed_different_schedule(self, dataset):
        _, features, extent = dataset
        base = dict(duration_seconds=2.0, rate=80.0)
        first = TrafficModel(
            features, extent, WorkloadConfig(seed=1, **base)
        ).schedule()
        second = TrafficModel(
            features, extent, WorkloadConfig(seed=2, **base)
        ).schedule()
        assert first != second

    def test_indexes_follow_send_order(self, dataset):
        _, features, extent = dataset
        schedule = TrafficModel(
            features,
            extent,
            WorkloadConfig(seed=9, duration_seconds=1.0, rate=100.0),
        ).schedule()
        assert [r.index for r in schedule] == list(range(len(schedule)))
        assert all(
            a.send_at <= b.send_at for a, b in zip(schedule, schedule[1:])
        )


class TestZipfPopularity:
    def test_weights_follow_rank_monotonically(self, dataset):
        _, features, extent = dataset
        model = TrafficModel(
            features, extent, WorkloadConfig(seed=3, zipf_exponent=1.2)
        )
        weights = model.keyword_weights
        assert len(weights) == len(model.ranked_words)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_empirical_frequency_tracks_rank(self, dataset):
        """Top-ranked words must be drawn at least as often as tail words."""
        _, features, extent = dataset
        model = TrafficModel(
            features,
            extent,
            WorkloadConfig(
                seed=11,
                duration_seconds=20.0,
                rate=100.0,
                zipf_exponent=1.5,
                keywords_per_query=1,
            ),
        )
        counts: dict = {}
        for request in model.schedule():
            for word in request.spec["keywords"]:
                counts[word] = counts.get(word, 0) + 1
        ranked = model.ranked_words
        head = sum(counts.get(word, 0) for word in ranked[:10])
        tail = sum(counts.get(word, 0) for word in ranked[-10:])
        assert head > tail

    def test_exponent_zero_is_uniformish(self, dataset):
        """With no skew the head cannot dominate the way Zipf does."""
        _, features, extent = dataset
        model = TrafficModel(
            features,
            extent,
            WorkloadConfig(
                seed=11,
                duration_seconds=20.0,
                rate=100.0,
                zipf_exponent=0.0,
                keywords_per_query=1,
            ),
        )
        counts: dict = {}
        total = 0
        for request in model.schedule():
            for word in request.spec["keywords"]:
                counts[word] = counts.get(word, 0) + 1
                total += 1
        top = max(counts.values())
        # Under Zipf(1.5) the top word takes a double-digit share; uniform
        # sampling over hundreds of words keeps every word's share tiny.
        assert top / total < 0.05


class TestArrivals:
    def test_poisson_long_run_mean(self, dataset):
        _, features, extent = dataset
        config = WorkloadConfig(seed=21, duration_seconds=30.0, rate=200.0)
        schedule = TrafficModel(features, extent, config).schedule()
        expected = config.rate * config.duration_seconds
        # 6000 expected arrivals; 4 sigma of a Poisson count is ~310.
        assert abs(len(schedule) - expected) < 4 * math.sqrt(expected) + 1
        assert all(0 <= r.send_at < config.duration_seconds for r in schedule)

    def test_diurnal_mean_and_shape(self, dataset):
        _, features, extent = dataset
        config = WorkloadConfig(
            seed=22,
            duration_seconds=20.0,
            rate=200.0,
            arrival="diurnal",
            diurnal_amplitude=0.9,
        )
        schedule = TrafficModel(features, extent, config).schedule()
        times = [r.send_at for r in schedule]
        expected = config.rate * config.duration_seconds
        assert abs(len(times) - expected) < 4 * math.sqrt(expected) + 1
        # The sinusoid rises through the first half-period and dips
        # through the second: the halves must be visibly asymmetric.
        half = config.duration_seconds / 2
        first = sum(1 for t in times if t < half)
        second = len(times) - first
        assert first > second * 1.2

    def test_burst_groups_share_an_instant(self, dataset):
        _, features, extent = dataset
        config = WorkloadConfig(
            seed=23,
            duration_seconds=2.0,
            rate=10.0,
            burst_every_seconds=0.5,
            burst_size=7,
        )
        schedule = TrafficModel(features, extent, config).schedule()
        bursts: dict = {}
        for request in schedule:
            if request.profile == "burst":
                bursts.setdefault(request.send_at, 0)
                bursts[request.send_at] += 1
        assert set(bursts) == {0.5, 1.0, 1.5}
        # Burst instants carry at least the injected group (a slow client
        # tag can re-label a member, hence >= only on the total).
        assert sum(bursts.values()) >= 3 * (config.burst_size - 2)

    def test_slow_clients_are_a_stable_subset(self, dataset):
        _, features, extent = dataset
        config = WorkloadConfig(
            seed=24,
            duration_seconds=4.0,
            rate=100.0,
            slow_client_fraction=0.25,
            clients=8,
        )
        schedule = TrafficModel(features, extent, config).schedule()
        slow_clients = {r.client for r in schedule if r.profile == "slow"}
        steady_clients = {r.client for r in schedule if r.profile != "slow"}
        assert len(slow_clients) == 2  # 25% of 8
        assert not slow_clients & steady_clients


class TestHotspot:
    def test_hotspot_box_inside_extent(self, dataset):
        _, features, extent = dataset
        model = TrafficModel(
            features,
            extent,
            WorkloadConfig(
                seed=31, hotspot_fraction=0.5, hotspot_extent_fraction=0.2
            ),
        )
        box = model.hotspot_box
        assert box is not None
        assert box.min_x >= extent.min_x and box.max_x <= extent.max_x
        assert box.min_y >= extent.min_y and box.max_y <= extent.max_y
        assert box.width == pytest.approx(extent.width * 0.2)

    def test_hotspot_words_come_from_inside_the_box(self, dataset):
        _, features, extent = dataset
        model = TrafficModel(
            features,
            extent,
            WorkloadConfig(seed=31, hotspot_fraction=1.0),
        )
        inside_words = set()
        for feature in features:
            if model.hotspot_box.contains(feature.x, feature.y):
                inside_words.update(feature.keywords)
        assert set(model.hotspot_words) == inside_words

    def test_full_hotspot_queries_use_hot_vocabulary(self, dataset):
        _, features, extent = dataset
        model = TrafficModel(
            features,
            extent,
            WorkloadConfig(
                seed=33,
                duration_seconds=5.0,
                rate=50.0,
                hotspot_fraction=1.0,
            ),
        )
        hot = set(model.hotspot_words)
        assert hot  # seed 33 must land the box on some features
        for request in model.schedule():
            assert set(request.spec["keywords"]) <= hot


class TestSpecValidity:
    def test_every_spec_parses_and_resolves(self, dataset):
        _, features, extent = dataset
        config = WorkloadConfig(
            seed=41,
            duration_seconds=3.0,
            rate=60.0,
            hotspot_fraction=0.3,
            burst_every_seconds=1.0,
            burst_size=4,
            deadline_ms=250.0,
            radius=3.0,
        )
        schedule = TrafficModel(features, extent, config).schedule()
        assert schedule
        for request in schedule:
            parsed = parse_query_spec(
                dict(request.spec), DEFAULTS, ALGORITHM_CHOICES
            )
            assert parsed.deadline_ms == 250.0
            assert parsed.item.query.k == config.k

    def test_deadline_ms_not_in_canonical_key(self, dataset):
        _, features, extent = dataset
        schedule = TrafficModel(
            features,
            extent,
            WorkloadConfig(seed=41, duration_seconds=1.0, deadline_ms=100.0),
        ).schedule()
        spec = dict(schedule[0].spec)
        with_deadline = parse_query_spec(spec, DEFAULTS, ALGORITHM_CHOICES)
        spec.pop("deadline_ms")
        without = parse_query_spec(spec, DEFAULTS, ALGORITHM_CHOICES)
        assert with_deadline.canonical_key((1, 0)) == without.canonical_key((1, 0))


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"duration_seconds": 0.0},
            {"rate": -1.0},
            {"arrival": "sawtooth"},
            {"diurnal_amplitude": 1.0},
            {"zipf_exponent": -0.1},
            {"keywords_per_query": 0},
            {"k": 0},
            {"hotspot_fraction": 1.5},
            {"hotspot_extent_fraction": 0.0},
            {"burst_every_seconds": -1.0},
            {"burst_size": -1},
            {"slow_client_fraction": -0.1},
            {"clients": 0},
        ],
    )
    def test_bad_knobs_rejected(self, dataset, overrides):
        _, features, extent = dataset
        with pytest.raises(ValueError):
            TrafficModel(features, extent, WorkloadConfig(**overrides))

    def test_empty_vocabulary_rejected(self, dataset):
        _, _, extent = dataset
        with pytest.raises(ValueError, match="empty vocabulary"):
            TrafficModel([], extent, WorkloadConfig())
