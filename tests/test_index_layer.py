"""Tests for the reusable index layer (``repro.index``)."""

from __future__ import annotations

import pytest

from repro.core.centralized import dataset_extent
from repro.core.jobs import ESPQScoJob, PSPQJob
from repro.index.cache import IndexCache
from repro.index.dataset_index import DatasetIndex
from repro.index.planner import BatchQuery, plan_batch
from repro.index.records import PreAssignedData, PreAssignedFeature
from repro.exceptions import InvalidQueryError
from repro.mapreduce.runtime import LocalJobRunner
from repro.model.objects import FeatureObject
from repro.model.query import SpatialPreferenceQuery
from repro.spatial.grid import UniformGrid
from repro.spatial.partitioning import GridPartitioner
from repro.text.inverted_index import PositionalInvertedIndex


@pytest.fixture()
def grid():
    return UniformGrid.unit(4)


@pytest.fixture()
def index(small_uniform_dataset):
    data, features = small_uniform_dataset
    grid = UniformGrid.square(dataset_extent(data, features), 8)
    return DatasetIndex(data, features, grid)


class TestPositionalInvertedIndex:
    def test_positions_follow_insertion_order(self):
        features = [
            FeatureObject("f1", 0.1, 0.1, frozenset({"a", "b"})),
            FeatureObject("f2", 0.2, 0.2, frozenset({"b"})),
            FeatureObject("f3", 0.3, 0.3, frozenset({"a"})),
        ]
        index = PositionalInvertedIndex(features)
        assert index.positions("a") == [0, 2]
        assert index.positions("b") == [0, 1]
        assert index.positions("zzz") == []

    def test_candidate_positions_are_sorted_and_deduplicated(self):
        features = [
            FeatureObject("f1", 0.1, 0.1, frozenset({"a", "b"})),
            FeatureObject("f2", 0.2, 0.2, frozenset({"b"})),
            FeatureObject("f3", 0.3, 0.3, frozenset({"c"})),
        ]
        index = PositionalInvertedIndex(features)
        assert index.candidate_positions({"a", "b"}) == [0, 1]
        assert index.candidate_positions({"c", "zzz"}) == [2]

    def test_equal_duplicate_features_keep_distinct_positions(self):
        # A set-based candidate lookup would silently collapse these.
        feature = FeatureObject("f1", 0.1, 0.1, frozenset({"a"}))
        index = PositionalInvertedIndex([feature, feature])
        assert index.candidate_positions({"a"}) == [0, 1]


class TestDatasetIndex:
    def test_candidates_match_pruning_rule(self, index, small_uniform_dataset):
        _, features = small_uniform_dataset
        keywords = frozenset({"w0001", "w0042"})
        expected = [
            position
            for position, feature in enumerate(features)
            if feature.has_common_keyword(keywords)
        ]
        assert index.candidate_positions(keywords) == expected

    def test_data_cells_match_partitioner(self, index, small_uniform_dataset):
        data, _ = small_uniform_dataset
        partitioner = GridPartitioner(index.grid, radius=0.0)
        for position in (0, 17, len(data) - 1):
            assert index.data_cell_of(position) == partitioner.assign_data_object(
                data[position]
            )

    def test_feature_cells_cached_per_radius(self, index, small_uniform_dataset):
        _, features = small_uniform_dataset
        assert index.cached_radii == []
        first = index.feature_cells(2.0)
        assert index.cached_radii == [2.0]
        assert index.feature_cells(2.0) is first  # cache hit returns same object
        index.feature_cells(5.0)
        assert index.cached_radii == [2.0, 5.0]
        partitioner = GridPartitioner(index.grid, radius=2.0)
        assert list(first[3]) == partitioner.assign_feature_object(features[3])

    def test_feature_cells_lazy_for_requested_positions(self, index):
        cache = index.feature_cells(1.5, positions=[4, 9])
        assert set(cache) == {4, 9}  # only the touched features were assigned
        again = index.feature_cells(1.5, positions=[9, 11])
        assert again is cache
        assert set(cache) == {4, 9, 11}

    def test_prepare_reports_pruning_and_order(self, index):
        query = SpatialPreferenceQuery.create(
            k=5, radius=2.0, keywords={"w0001", "w0042"}
        )
        prepared = index.prepare(query)
        records = list(prepared.records)
        assert prepared.num_candidates == len(records)
        assert prepared.num_pruned == index.num_features - prepared.num_candidates
        positions = index.candidate_positions(query.keywords)
        assert [r.obj for r in records] == [
            index._feature_objects[p] for p in positions
        ]
        assert all(isinstance(r, PreAssignedFeature) for r in records)

    def test_radius_cache_hit_flag(self, index):
        query = SpatialPreferenceQuery.create(k=5, radius=3.0, keywords={"w0001"})
        assert index.prepare(query).radius_cache_hit is False
        assert index.prepare(query).radius_cache_hit is True


class TestPreloadedShuffle:
    def test_preloaded_run_equals_plain_run(self, paper_data_objects, paper_feature_objects):
        from repro.spatial.geometry import BoundingBox

        grid = UniformGrid.square(BoundingBox(0.0, 0.0, 10.0, 10.0), 3)
        query = SpatialPreferenceQuery.create(k=2, radius=1.5, keywords={"italian"})
        index = DatasetIndex(paper_data_objects, paper_feature_objects, grid)

        plain_job = ESPQScoJob(query, grid)
        runner = LocalJobRunner(num_reducers=grid.num_cells)
        plain = runner.run(
            plain_job, list(paper_data_objects) + list(paper_feature_objects)
        )

        batch_job = ESPQScoJob(query, grid)
        prepared = index.prepare(query)
        batch = runner.run(
            batch_job, prepared.records, preloaded=index.data_shuffle(batch_job)
        )
        assert sorted(batch.outputs) == sorted(plain.outputs)

    def test_data_shuffle_cached_per_job_class(self, paper_data_objects, paper_feature_objects):
        from repro.spatial.geometry import BoundingBox

        grid = UniformGrid.square(BoundingBox(0.0, 0.0, 10.0, 10.0), 3)
        query = SpatialPreferenceQuery.create(k=1, radius=1.5, keywords={"italian"})
        index = DatasetIndex(paper_data_objects, paper_feature_objects, grid)
        sco = index.data_shuffle(ESPQScoJob(query, grid))
        assert index.data_shuffle(ESPQScoJob(query, grid)) is sco
        assert index.data_shuffle(PSPQJob(query, grid)) is not sco

    def test_preloaded_partition_count_validated(self, paper_data_objects, paper_feature_objects):
        from repro.exceptions import JobConfigurationError
        from repro.spatial.geometry import BoundingBox

        grid = UniformGrid.square(BoundingBox(0.0, 0.0, 10.0, 10.0), 3)
        query = SpatialPreferenceQuery.create(k=1, radius=1.5, keywords={"italian"})
        index = DatasetIndex(paper_data_objects, paper_feature_objects, grid)
        job = ESPQScoJob(query, grid)
        shuffle = index.data_shuffle(job)
        wrong_runner = LocalJobRunner(num_reducers=grid.num_cells + 1)
        with pytest.raises(JobConfigurationError):
            wrong_runner.run(job, [], preloaded=shuffle)


class TestIndexCache:
    def _entry(self):
        # The cache never inspects its values, so a sentinel object suffices.
        return object()

    def test_hit_miss_accounting(self):
        cache = IndexCache(capacity=2)
        value, hit = cache.get_or_build("a", self._entry)
        assert hit is False
        again, hit = cache.get_or_build("a", self._entry)
        assert hit is True and again is value
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = IndexCache(capacity=2)
        cache.get_or_build("a", self._entry)
        cache.get_or_build("b", self._entry)
        cache.get_or_build("a", self._entry)  # refresh "a"
        cache.get_or_build("c", self._entry)  # evicts "b"
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_single_and_all(self):
        cache = IndexCache(capacity=4)
        cache.get_or_build("a", self._entry)
        cache.get_or_build("b", self._entry)
        assert cache.invalidate("a") == 1
        assert cache.invalidate("a") == 0
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            IndexCache(capacity=0)

    def test_concurrent_same_key_builds_once(self):
        import threading

        cache = IndexCache(capacity=4)
        release = threading.Event()
        builds = []

        def slow_build():
            builds.append(threading.current_thread().name)
            release.wait(5)
            return object()

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_build("k", slow_build))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        # Hits and builds of OTHER keys must not block behind the build.
        other, hit = cache.get_or_build("other", self._entry)
        assert hit is False
        release.set()
        for thread in threads:
            thread.join()
        assert len(builds) == 1  # exactly one thread paid the build
        values = {id(value) for value, _ in results}
        assert len(values) == 1  # everyone got the same index
        assert sum(1 for _, was_hit in results if not was_hit) == 1

    def test_failed_build_releases_waiters(self):
        cache = IndexCache(capacity=4)

        def boom():
            raise RuntimeError("build failed")

        with pytest.raises(RuntimeError):
            cache.get_or_build("k", boom)
        # The latch was cleaned up: the next caller builds fresh.
        value, hit = cache.get_or_build("k", self._entry)
        assert hit is False and value is not None


class TestPlanner:
    def test_groups_by_grid_and_mode_preserving_positions(self):
        q = SpatialPreferenceQuery.create(k=1, radius=1.0, keywords={"a"})
        items = [
            BatchQuery(q, grid_size=20),
            q,
            BatchQuery(q, grid_size=20, algorithm="pspq"),
            BatchQuery(q, score_mode="influence", algorithm="pspq"),
        ]
        plan = plan_batch(items, "espq-sco", 10, "range")
        assert [p.position for p in plan] == [3, 1, 0, 2]
        assert plan[0].score_mode == "influence"
        assert plan[1].grid_size == 10
        assert plan[2].grid_size == 20 and plan[2].algorithm == "espq-sco"

    def test_rejects_foreign_items(self):
        with pytest.raises(InvalidQueryError):
            plan_batch(["not a query"], "espq-sco", 10, "range")

    def test_rejects_invalid_grid_size_override(self):
        q = SpatialPreferenceQuery.create(k=1, radius=1.0, keywords={"a"})
        with pytest.raises(InvalidQueryError, match="grid_size"):
            plan_batch([BatchQuery(q, grid_size=0)], "espq-sco", 10, "range")
        with pytest.raises(InvalidQueryError, match="grid_size"):
            plan_batch([q], "espq-sco", "20", "range")


class TestPreAssignedRecords:
    def test_records_are_frozen(self, paper_data_objects):
        record = PreAssignedData(paper_data_objects[0], 3)
        with pytest.raises(AttributeError):
            record.cell_id = 4
