"""Inverted keyword index over feature objects.

Centralized spatio-textual systems (the related work the paper contrasts
against) pair a spatial index with an inverted index: for each keyword, the
list of feature objects containing it.  The index supports the two lookups
the indexed baseline needs:

* the union of posting lists for a query keyword set (the candidate features
  that can have non-zero Jaccard score), and
* candidate features ordered by their exact score against a query, which is
  what ``eSPQsco`` achieves in a distributed way through its sort order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.model.objects import FeatureObject
from repro.text.similarity import non_spatial_score


class InvertedIndex:
    """Keyword -> feature-object posting lists."""

    def __init__(self, features: Iterable[FeatureObject] = ()) -> None:
        self._postings: Dict[str, List[FeatureObject]] = defaultdict(list)
        self._num_features = 0
        for feature in features:
            self.add(feature)

    def add(self, feature: FeatureObject) -> None:
        """Index one feature object under each of its keywords."""
        self._num_features += 1
        for keyword in feature.keywords:
            self._postings[keyword].append(feature)

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._num_features

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed keywords."""
        return len(self._postings)

    def postings(self, keyword: str) -> List[FeatureObject]:
        """Posting list of one keyword (empty list if unknown)."""
        return list(self._postings.get(keyword, ()))

    def document_frequency(self, keyword: str) -> int:
        """Number of features containing ``keyword``."""
        return len(self._postings.get(keyword, ()))

    def candidates(self, keywords: Iterable[str]) -> Set[FeatureObject]:
        """Features sharing at least one keyword with the query (non-zero Jaccard)."""
        result: Set[FeatureObject] = set()
        for keyword in keywords:
            result.update(self._postings.get(keyword, ()))
        return result

    def scored_candidates(
        self, keywords: Sequence[str] | Set[str]
    ) -> List[Tuple[FeatureObject, float]]:
        """Candidates with their exact Jaccard score, best first.

        This is the centralized analogue of the ``eSPQsco`` reducer order:
        processing candidates in this order allows terminating as soon as
        enough data objects have been matched.
        """
        keyword_set = frozenset(keywords)
        scored = [
            (feature, non_spatial_score(feature.keywords, keyword_set))
            for feature in self.candidates(keyword_set)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0].oid))
        return scored


class PositionalInvertedIndex(InvertedIndex):
    """Inverted index that also records each feature's insertion position.

    The distributed engine needs candidates *in storage order* (the order the
    map phase would have streamed them) so that batch execution reproduces the
    sequential shuffle ordering bit-for-bit.  A plain set of candidate
    features cannot provide that -- and would silently deduplicate equal
    feature objects -- so this subclass keeps, per keyword, the list of
    0-based positions at which matching features were added.
    """

    def __init__(self, features: Iterable[FeatureObject] = ()) -> None:
        self._keyword_positions: Dict[str, List[int]] = defaultdict(list)
        super().__init__(features)

    def add(self, feature: FeatureObject) -> None:
        """Append one feature and index its keywords by storage position."""
        position = len(self)
        super().add(feature)
        for keyword in feature.keywords:
            self._keyword_positions[keyword].append(position)

    def positions(self, keyword: str) -> List[int]:
        """Insertion positions of the features containing ``keyword``."""
        return list(self._keyword_positions.get(keyword, ()))

    def candidate_positions(self, keywords: Iterable[str]) -> List[int]:
        """Positions of features sharing a keyword with the query, ascending.

        Ascending position order *is* storage order, which makes the result
        directly usable as a filtered map-phase input stream.
        """
        seen: Set[int] = set()
        for keyword in keywords:
            seen.update(self._keyword_positions.get(keyword, ()))
        return sorted(seen)
