"""Cost model: converts measured MapReduce work into simulated job time.

The paper's evaluation metric is "the time required for the MapReduce job to
complete".  Our substrate is an in-process simulator, so instead of wall-clock
seconds we compute a *simulated job execution time* from the work the job
actually performed:

``T_job = T_startup + T_map + T_shuffle + T_reduce``

* ``T_map``     -- map input records and map output records, processed by the
  cluster's map slots in parallel waves;
* ``T_shuffle`` -- total shuffled bytes over the (aggregate) network;
* ``T_reduce``  -- the makespan of scheduling reduce-task costs on the cluster
  slots, where one reduce task's cost is dominated by its work units
  (score computations / feature objects examined, as reported by the
  algorithm) plus the records it had to ingest.

All constants are per-record/per-unit costs in seconds; the defaults are
calibrated so that the default experimental setup lands in the same order of
magnitude as the paper's charts (hundreds of seconds for pSPQ on the real
datasets).  Absolute values are irrelevant for the reproduction -- the shapes
come from the measured counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.mapreduce.cluster import SimulatedCluster, paper_cluster
from repro.mapreduce import counters as counter_names
from repro.mapreduce.runtime import JobResult


@dataclass(frozen=True)
class CostParameters:
    """Per-unit costs (in simulated seconds) of the cluster cost model.

    The defaults are calibrated for the *scaled-down* datasets used by the
    benchmark harness (thousands of objects instead of the paper's tens of
    millions): one work unit of a scaled run stands for the proportionally
    larger amount of work a reducer would perform at full scale, so the
    per-unit cost is correspondingly larger.  With these defaults the default
    experimental setup lands in the same order of magnitude as the paper's
    charts (pSPQ at hundreds of simulated seconds, the early-termination
    algorithms at tens), and -- more importantly -- the reduce phase dominates
    the job time exactly as it does on the real cluster, so the figure shapes
    are governed by the measured work counters.
    """

    #: Fixed job start-up / tear-down overhead (container launch, etc.).
    job_startup: float = 5.0
    #: Cost of reading + mapping one input record.
    map_record: float = 1.0e-5
    #: Cost of serializing + emitting one map output record.
    map_emit: float = 5.0e-6
    #: Cost of one map-side algorithm work unit (eSPQsco's per-feature
    #: Jaccard computations; the other jobs report none).
    map_work_unit: float = 2.0e-4
    #: Network cost per shuffled byte (aggregate cluster bandwidth).
    shuffle_byte: float = 2.0e-7
    #: Cost of ingesting (merge/deserialize) one record in a reduce task.
    reduce_ingest: float = 1.0e-4
    #: Cost of one algorithm work unit (e.g. a distance/score computation).
    reduce_work_unit: float = 5.0e-2
    #: Fixed per-reduce-task overhead (task launch).
    reduce_task_overhead: float = 0.01


@dataclass(frozen=True)
class CostBreakdown:
    """Simulated time per phase plus the total."""

    startup: float
    map: float
    shuffle: float
    reduce: float

    @property
    def total(self) -> float:
        """Total simulated seconds across all phases."""
        return self.startup + self.map + self.shuffle + self.reduce

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the breakdown, including the total."""
        return {
            "startup": self.startup,
            "map": self.map,
            "shuffle": self.shuffle,
            "reduce": self.reduce,
            "total": self.total,
        }


class CostModel:
    """Computes simulated job execution time for a :class:`JobResult`.

    The phase formulas are factored into :meth:`compose` /
    :meth:`reduce_task_cost` so that callers holding *predicted* quantities
    (the a-priori query planner) price them through exactly the same model
    as a finished job's measured counters.
    """

    def __init__(
        self,
        cluster: Optional[SimulatedCluster] = None,
        parameters: Optional[CostParameters] = None,
    ) -> None:
        self.cluster = cluster or paper_cluster()
        self.parameters = parameters or CostParameters()

    def reduce_task_cost(self, input_records: float, work_units: float) -> float:
        """Cost of one reduce task from its record and work-unit counts."""
        params = self.parameters
        return (
            params.reduce_task_overhead
            + input_records * params.reduce_ingest
            + work_units * params.reduce_work_unit
        )

    def compose(
        self,
        map_inputs: float,
        map_outputs: float,
        num_map_tasks: int,
        shuffle_bytes: float,
        reduce_costs: "Sequence[float]",
        map_work_units: float = 0.0,
    ) -> CostBreakdown:
        """Price phase quantities -- measured or predicted -- into a breakdown."""
        params = self.parameters
        # Map work is spread over all cluster slots (map tasks are plentiful
        # and uniform, so a simple division captures the parallelism).
        map_cost = (
            map_inputs * params.map_record
            + map_outputs * params.map_emit
            + map_work_units * params.map_work_unit
        )
        map_time = map_cost / self.cluster.total_slots * self._map_wave_penalty(num_map_tasks)
        shuffle_time = shuffle_bytes * params.shuffle_byte
        reduce_time, _ = self.cluster.schedule(reduce_costs)
        return CostBreakdown(
            startup=params.job_startup,
            map=map_time,
            shuffle=shuffle_time,
            reduce=reduce_time,
        )

    def estimate(self, result: JobResult) -> CostBreakdown:
        """Break down the simulated execution time of a finished job."""
        counters = result.counters
        map_inputs = counters.get(counter_names.GROUP_MAP, counter_names.MAP_INPUT_RECORDS)
        map_outputs = counters.get(counter_names.GROUP_MAP, counter_names.MAP_OUTPUT_RECORDS)
        map_work = counters.get(counter_names.GROUP_MAP, counter_names.MAP_SCORE_COMPUTATIONS)
        shuffle_bytes = counters.get(counter_names.GROUP_SHUFFLE, counter_names.SHUFFLE_BYTES)
        reduce_costs = [
            self.reduce_task_cost(report.input_records, report.work_units())
            for report in result.reduce_reports
        ]
        return self.compose(
            map_inputs,
            map_outputs,
            result.num_map_tasks,
            shuffle_bytes,
            reduce_costs,
            map_work_units=map_work,
        )

    def simulated_seconds(self, result: JobResult) -> float:
        """Total simulated job execution time in seconds."""
        return self.estimate(result).total

    def _map_wave_penalty(self, num_map_tasks: int) -> float:
        """Correction for partially filled final map waves.

        With very few map tasks the cluster cannot use all its slots; the
        penalty scales the idealised all-slots-busy time accordingly.
        """
        slots = self.cluster.total_slots
        tasks = max(num_map_tasks, 1)
        if tasks >= slots:
            return 1.0
        return slots / tasks
