"""The long-running query service behind ``repro serve``.

:class:`QueryService` turns the batch-oriented engine stack into an online
system:

* a **warm engine pool** -- ``engines`` :class:`~repro.core.engine.SPQEngine`
  instances over one dataset snapshot, all sharing a single
  :class:`~repro.index.cache.IndexCache` (an index built for any request
  serves every later request, whichever engine runs it) and a single
  :class:`~repro.planner.core.QueryPlanner` (every executed query feeds one
  calibration state);
* **micro-batching** -- concurrent requests are grouped by the
  :class:`~repro.server.batching.MicroBatcher` into ``execute_many`` calls,
  so the batch-reuse machinery built for offline workloads applies to
  online traffic;
* a **result cache** -- an LRU of response payloads keyed by
  ``(dataset_version, canonical query)``
  (:class:`~repro.server.cache.ResultCache`), answering repeated queries
  without touching an engine; and
* **durable calibration** -- with a ``calibration_path`` the planner's
  state is restored on start, checkpointed periodically while serving and
  saved atomically on shutdown, so ``algorithm="auto"`` starts sharp after
  a restart instead of re-warming from priors.

The service is transport-agnostic: :mod:`repro.server.http` exposes it over
stdlib HTTP, tests and benchmarks drive :meth:`QueryService.submit`
directly.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.centralized import dataset_extent
from repro.core.engine import ALGORITHM_CHOICES, EngineConfig, SPQEngine
from repro.datagen.queries import radius_from_cell_fraction
from repro.exceptions import OverloadError
from repro.model.objects import DataObject, FeatureObject
from repro.index.cache import IndexCache
from repro.index.delta import DatasetDelta
from repro.planner.core import PlannerConfig, QueryPlanner, resolve_planner_mode
from repro.planner.persistence import save_calibration, try_restore_calibration
from repro.server.admission import AdmissionController
from repro.server.batching import MicroBatcher, PendingRequest
from repro.server.cache import ResultCache
from repro.server.metrics import LatencyHistogram
from repro.server.protocol import (
    ParsedRequest,
    RequestDefaults,
    parse_query_spec,
    result_payload,
)
from repro.spatial.geometry import BoundingBox


def resolve_request_defaults(
    extent: BoundingBox, engine_grid_size: int, config: "ServiceConfig"
) -> RequestDefaults:
    """Service-level request defaults for one dataset extent.

    Shared by :class:`QueryService` and the shard router so an unsharded
    service and a router over the same dataset resolve a request to the
    same canonical query (same default radius rule, same grid size) --
    a precondition of their result identity.
    """
    grid_size = (
        config.default_grid_size
        if config.default_grid_size is not None
        else engine_grid_size
    )
    radius = config.default_radius
    if radius is None:
        radius = radius_from_cell_fraction(
            extent, grid_size, config.default_radius_fraction
        )
    return RequestDefaults(
        k=config.default_k,
        radius=float(radius),
        algorithm=config.default_algorithm,
        grid_size=grid_size,
        score_mode="range",
    )


@dataclass
class ServiceConfig:
    """Knobs of one :class:`QueryService`.

    Attributes:
        engines: Warm engine-pool size; also the number of micro-batch
            dispatcher threads (dispatcher *i* owns engine *i*).
        max_batch: Largest micro-batch handed to one ``execute_many`` call.
        batch_window_seconds: How long a dispatcher lingers for batchmates
            (0 = natural batching: group what is queued, never wait).
        result_cache_capacity: Entries of the response LRU (0 disables it).
        calibration_path: Durable planner-calibration snapshot location;
            None disables persistence.
        calibration_seed_path: Snapshot read *only on a cold start* (no file
            at ``calibration_path`` yet) to seed the calibrator; checkpoints
            never write here.  Sharded deployments point every shard at one
            shared global snapshot.
        checkpoint_interval_seconds: Periodic calibration checkpoint cadence
            while serving (0 = save only on shutdown).
        request_timeout_seconds: How long one submitted request may wait for
            its micro-batch before :class:`TimeoutError`.
        compact_threshold: Once the delta overlay holds this many live
            operations (appends + tombstones), a background compaction
            folds it into a fresh base snapshot.  0 (the default) disables
            auto-compaction; :meth:`QueryService.compact` stays available
            either way.
        admission_queue_depth: Bounded admission queue: at most this many
            requests may be admitted-but-unfinished at once; arrivals past
            the bound are shed with :class:`~repro.exceptions.OverloadError`
            (HTTP 429) instead of queueing toward a timeout.  0 (the
            default) disables admission control entirely
            (``docs/traffic.md``).
        default_deadline_ms: Latency budget applied to requests that carry
            no ``deadline_ms`` of their own; only honored while admission
            control is enabled.  None (the default) means no deadline.
        default_k / default_radius / default_radius_fraction /
            default_algorithm / default_grid_size: Applied to request fields
            the client leaves unset.  A None ``default_radius`` derives one
            from ``default_radius_fraction`` of the default grid's cell side
            (the same rule the CLI uses); a None ``default_grid_size``
            defers to the engine configuration.
    """

    engines: int = 2
    max_batch: int = 8
    batch_window_seconds: float = 0.0
    result_cache_capacity: int = 256
    calibration_path: Optional[str] = None
    calibration_seed_path: Optional[str] = None
    checkpoint_interval_seconds: float = 0.0
    request_timeout_seconds: float = 60.0
    compact_threshold: int = 0
    admission_queue_depth: int = 0
    default_deadline_ms: Optional[float] = None
    default_k: int = 10
    default_radius: Optional[float] = None
    default_radius_fraction: float = 0.10
    default_algorithm: str = "espq-sco"
    default_grid_size: Optional[int] = None


@dataclass
class _ServiceCounters:
    """Mutable request/batch accounting (guarded by the service lock)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch: int = 0
    swaps: int = 0
    write_batches: int = 0
    compactions: int = 0
    last_compaction_unix: Optional[float] = None
    compaction_error: Optional[str] = None
    checkpoints: int = 0
    last_checkpoint_unix: Optional[float] = None
    checkpoint_error: Optional[str] = None
    calibration_restored: bool = False
    calibration_seeded: bool = False
    calibration_rejected: Optional[str] = None


@dataclass
class _PendingPayload:
    """What rides through the micro-batch queue for one request."""

    parsed: ParsedRequest
    #: Submission timestamp (``time.monotonic``) for the latency histogram.
    submitted_monotonic: float = 0.0
    #: Absolute monotonic deadline (None = no deadline).  The dispatcher
    #: checks it before executing: a request whose budget expired while
    #: queued is failed without ever touching an engine.
    deadline_monotonic: Optional[float] = None


class QueryService:
    """Concurrent, warm query service over one dataset snapshot.

    Use as a context manager (``with QueryService(...) as service:``) or
    call :meth:`start` / :meth:`shutdown` explicitly.  Thread-safe:
    :meth:`submit` may be called from any number of transport threads.
    """

    def __init__(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
        engine_config: Optional[EngineConfig] = None,
        config: Optional[ServiceConfig] = None,
        extent: Optional[BoundingBox] = None,
    ) -> None:
        """Build the engine pool and serving structures (does not start).

        Args:
            data_objects: The object dataset ``O``.
            feature_objects: The feature dataset ``F``.
            engine_config: Engine knobs shared by every pooled engine.
            config: Service knobs (defaults to :class:`ServiceConfig`).
            extent: Explicit grid extent for every pooled engine.  The shard
                router passes the *full* dataset extent so a shard service's
                query grids align cell-for-cell with an unsharded engine's;
                plain deployments leave it None (extent derived from the
                datasets).

        Raises:
            ValueError: for a non-positive engine pool.
            JobConfigurationError: for invalid engine backend/planner
                configuration.
            InvalidQueryError: for an explicit degenerate ``extent``.
        """
        self.config = config or ServiceConfig()
        if self.config.engines < 1:
            raise ValueError(f"engines must be >= 1, got {self.config.engines}")
        engine_config = engine_config or EngineConfig()
        self.planner_mode = resolve_planner_mode(engine_config.planner_mode)
        self._planner: Optional[QueryPlanner] = None
        if self.planner_mode == "on":
            self._planner = QueryPlanner(
                cluster=engine_config.cluster,
                parameters=engine_config.cost_parameters,
                config=PlannerConfig(
                    mode=self.planner_mode,
                    memory=engine_config.planner_memory,
                    smoothing=engine_config.planner_smoothing,
                ),
            )
        self._index_cache = IndexCache(capacity=engine_config.index_cache_capacity)
        #: One delta overlay shared by the whole pool: a write absorbed via
        #: any engine is visible to every dispatcher's next batch.
        self._delta = DatasetDelta()
        self._engines: List[SPQEngine] = [
            SPQEngine(
                data_objects,
                feature_objects,
                config=engine_config,
                extent=extent,
                index_cache=self._index_cache,
                planner=self._planner,
                delta=self._delta,
            )
            for _ in range(self.config.engines)
        ]
        self._result_cache = ResultCache(self.config.result_cache_capacity)
        self._admission = AdmissionController(
            queue_depth=self.config.admission_queue_depth,
            default_deadline_ms=self.config.default_deadline_ms,
        )
        self._batcher = MicroBatcher(
            self._execute_batch,
            workers=self.config.engines,
            max_batch=self.config.max_batch,
            window_seconds=self.config.batch_window_seconds,
        )
        self._defaults = self._resolve_defaults()
        self._counters = _ServiceCounters()
        self._latency = LatencyHistogram()
        self._lock = threading.Lock()
        #: Serializes dataset swaps against each other.
        self._swap_lock = threading.Lock()
        #: The service's write queue: incremental writes, compactions and
        #: full swaps serialize here, so a compaction can never race a
        #: write landing between "materialize the delta" and "swap the
        #: folded snapshot in" (that write would silently vanish).
        #: Reentrant because compact() swaps while holding it.
        self._write_lock = threading.RLock()
        #: Re-derive the grid extent from the datasets on a full swap
        #: without an explicit extent (the lazy-extent policy of a plain
        #: deployment); compactions pin the extent explicitly, so this is
        #: what keeps a *later* client-initiated full swap re-deriving.
        self._derive_extent_on_swap = extent is None
        #: Single-flight gate of the background auto-compaction thread.
        self._compaction_thread: Optional[threading.Thread] = None
        #: Quiesce gate: while ``_paused`` no new micro-batch starts;
        #: ``_inflight_batches`` counts batches currently executing.
        self._pause_cond = threading.Condition()
        self._paused = False
        self._inflight_batches = 0
        self._checkpoint_stop = threading.Event()
        self._checkpoint_thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        self._started_monotonic: Optional[float] = None

    def _resolve_defaults(self) -> RequestDefaults:
        return resolve_request_defaults(
            self._engines[0].extent,
            self._engines[0].config.grid_size,
            self.config,
        )

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "QueryService":
        """Restore calibration, spawn dispatchers and checkpoints (idempotent).

        A calibration snapshot that fails validation is *rejected, not
        fatal*: the reason is recorded in :meth:`stats` under
        ``planner.persistence.rejected`` and the service starts cold.
        """
        with self._lock:
            if self._started or self._closed:
                return self
            self._started = True
            self._started_monotonic = time.monotonic()
        if self._planner is not None and (
            self.config.calibration_path or self.config.calibration_seed_path
        ):
            primary = self.config.calibration_path
            primary_exists = bool(primary) and os.path.exists(primary)
            rejected = try_restore_calibration(
                primary,
                self._planner.calibrator,
                seed_path=self.config.calibration_seed_path,
            )
            with self._lock:
                self._counters.calibration_rejected = rejected
                self._counters.calibration_restored = (
                    rejected is None
                    and self._planner.calibrator.observations > 0
                )
                self._counters.calibration_seeded = (
                    self._counters.calibration_restored and not primary_exists
                )
        self._batcher.start()
        if (
            self.config.calibration_path
            and self._planner is not None
            and self.config.checkpoint_interval_seconds > 0
        ):
            self._checkpoint_thread = threading.Thread(
                target=self._run_checkpoints,
                name="repro-calibration-checkpoint",
                daemon=True,
            )
            self._checkpoint_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving, save calibration, close every engine (idempotent).

        Queued requests are drained before the dispatchers exit; engines
        are closed afterwards, and closing an already-closed engine is a
        no-op, so repeated shutdowns (or external ``close()`` calls on
        pooled engines) are safe.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.stop()
        self._checkpoint_stop.set()
        if self._checkpoint_thread is not None:
            self._checkpoint_thread.join()
        compaction = self._compaction_thread
        if compaction is not None and compaction.is_alive():
            compaction.join()
        if self._started:
            self.checkpoint()
        for engine in self._engines:
            engine.close()
        # The engine pool shares one index cache (each pooled engine's
        # close() leaves shared caches alone), so the service unpublishes
        # the cached indexes' shared-memory planes exactly once here.
        self._index_cache.release_all()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has been called."""
        return self._closed

    def uptime_seconds(self) -> float:
        """Seconds since :meth:`start` (0.0 before it); lock-free.

        Liveness probes poll this every few seconds -- it must not contend
        on the counter or calibrator locks the way the full :meth:`stats`
        tree does.
        """
        started = self._started_monotonic
        return time.monotonic() - started if started is not None else 0.0

    def _run_checkpoints(self) -> None:
        interval = self.config.checkpoint_interval_seconds
        while not self._checkpoint_stop.wait(interval):
            self.checkpoint()

    def checkpoint(self) -> Optional[str]:
        """Persist the calibration state now; returns the path written.

        No-op (returns None) without a ``calibration_path`` or with the
        planner disabled.  A failed write (directory gone, disk full, ...)
        never raises -- shutdown must still close the engines and the
        periodic checkpoint thread must survive transient failures -- it
        returns None and records the error under
        ``planner.persistence.last_error`` in :meth:`stats`.
        """
        if self._planner is None or not self.config.calibration_path:
            return None
        try:
            save_calibration(
                self.config.calibration_path, self._planner.calibrator
            )
        except OSError as exc:
            with self._lock:
                self._counters.checkpoint_error = str(exc)
            return None
        with self._lock:
            self._counters.checkpoints += 1
            self._counters.last_checkpoint_unix = time.time()
            self._counters.checkpoint_error = None
        return self.config.calibration_path

    def seed_calibration_if_cold(self) -> bool:
        """(Re)seed a still-cold calibrator from its snapshot or seed path.

        The shard router calls this after a rebalance: a shard that served
        no traffic before the layout change still has zero observations,
        and re-running the restore-or-seed rule of :meth:`start` hands it
        the fleet-wide estimates of the shared seed snapshot instead of a
        cold start.  A calibrator that has learned anything -- or a
        service without persistence configured -- is left untouched.

        Returns:
            True when a snapshot or seed was applied.
        """
        planner = self._planner
        if planner is None or planner.calibrator.observations > 0:
            return False
        if not (
            self.config.calibration_path or self.config.calibration_seed_path
        ):
            return False
        rejected = try_restore_calibration(
            self.config.calibration_path,
            planner.calibrator,
            seed_path=self.config.calibration_seed_path,
        )
        seeded = rejected is None and planner.calibrator.observations > 0
        if seeded:
            with self._lock:
                self._counters.calibration_restored = True
                self._counters.calibration_seeded = True
        return seeded

    # ------------------------------------------------------------------ #
    # datasets

    def set_datasets(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
    ) -> None:
        """Swap the dataset snapshot on every pooled engine (quiescing).

        Alias of :meth:`swap_datasets`, kept for callers of the pre-hot-swap
        API; since the quiesce protocol landed, swapping under live traffic
        is safe (no request is lost or fails because of the swap).
        """
        self.swap_datasets(data_objects, feature_objects)

    def swap_datasets(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
        extent: Optional[BoundingBox] = None,
    ) -> Dict[str, object]:
        """Hot-swap the dataset under live traffic; returns the new snapshot info.

        The quiesce protocol (the ``POST /datasets`` endpoint runs this):

        1. new micro-batches are *paused* -- dispatcher threads block before
           touching an engine, while submissions keep queueing normally;
        2. the swap waits for every in-flight micro-batch to finish (those
           requests are answered from the old snapshot);
        3. every pooled engine swaps atomically with respect to serving --
           no batch can observe a half-swapped pool -- bumping its dataset
           version, which makes every cached result and index unreachable;
        4. request defaults are re-derived (the default radius follows the
           new extent) and dispatch resumes.

        Requests submitted during the swap are served from the new snapshot
        once dispatch resumes; none fail because of the swap.

        Args:
            data_objects: The new object dataset ``O``.
            feature_objects: The new feature dataset ``F``.
            extent: Optional new explicit engine extent (sharded
                deployments pass the new *full* extent).

        Returns:
            ``{"version", "data_objects", "feature_objects"}`` of the new
            snapshot.
        """
        if extent is None and self._derive_extent_on_swap:
            # Pin the extent the engines would lazily derive.  Without
            # this, a compaction's explicit extent pin would survive into
            # later full swaps and keep serving the *old* extent.
            extent = dataset_extent(data_objects, feature_objects)
        with self._write_lock, self._swap_lock:
            with self._pause_cond:
                self._paused = True
                while self._inflight_batches:
                    self._pause_cond.wait()
            try:
                for engine in self._engines:
                    engine.set_datasets(data_objects, feature_objects, extent=extent)
                self._result_cache.invalidate()
                self._defaults = self._resolve_defaults()
                with self._lock:
                    self._counters.swaps += 1
            finally:
                with self._pause_cond:
                    self._paused = False
                    self._pause_cond.notify_all()
        return self.dataset_info()

    # ------------------------------------------------------------------ #
    # incremental ingest (delta overlay; see docs/ingest.md)

    @property
    def delta(self) -> DatasetDelta:
        """The pool's shared append/delete overlay."""
        return self._delta

    def apply_objects(
        self,
        append_data: Sequence[DataObject] = (),
        append_features: Sequence[FeatureObject] = (),
        delete_data_oids: Sequence[str] = (),
        delete_feature_oids: Sequence[str] = (),
    ) -> Dict[str, object]:
        """Absorb one incremental write batch (the ``POST /objects`` body).

        Writes serialize on the service write lock but never quiesce the
        readers: in-flight micro-batches pinned their delta snapshot
        already and finish on it, the next batch sees the new one.  When
        the delta grows past ``compact_threshold``, a background
        compaction is kicked off (single-flight; queries keep flowing).

        Returns:
            The applied counts plus the delta's new size summary.

        Raises:
            DatasetUpdateError: for an invalid batch (nothing is applied).
            RuntimeError: once the service is shut down.
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        with self._write_lock:
            counts = self._engines[0].apply_updates(
                append_data=append_data,
                append_features=append_features,
                delete_data_oids=delete_data_oids,
                delete_feature_oids=delete_feature_oids,
            )
        with self._lock:
            self._counters.write_batches += 1
        self._maybe_autocompact()
        return {**counts, "delta": self._delta.snapshot().counts()}

    def compact(self) -> Dict[str, object]:
        """Fold the delta overlay into a fresh base snapshot now.

        Runs under the write lock (no write can land between materialize
        and swap) and swaps through the standard quiesce protocol, so no
        in-flight request is lost and readers never block on the fold
        itself -- only on the brief engine swap.  The current served
        extent is pinned across the fold: deleting a hull object must not
        shrink the grids queries are answered on.

        Returns:
            ``{"compacted": bool, "folded_ops": int, ...dataset_info}``.
        """
        with self._write_lock:
            snapshot = self._delta.snapshot()
            if snapshot.is_empty:
                return {
                    "compacted": False,
                    "folded_ops": 0,
                    **self.dataset_info(),
                }
            engine = self._engines[0]
            extent = engine.extent
            data, features = engine.materialize_datasets(snapshot)
            self.swap_datasets(data, features, extent=extent)
            with self._lock:
                self._counters.compactions += 1
                self._counters.last_compaction_unix = time.time()
                self._counters.compaction_error = None
        return {
            "compacted": True,
            "folded_ops": snapshot.num_ops,
            **self.dataset_info(),
        }

    def _maybe_autocompact(self) -> None:
        threshold = self.config.compact_threshold
        if threshold <= 0 or self._delta.snapshot().num_ops < threshold:
            return
        with self._lock:
            thread = self._compaction_thread
            if self._closed or (thread is not None and thread.is_alive()):
                return
            thread = threading.Thread(
                target=self._run_autocompaction,
                name="repro-delta-compaction",
                daemon=True,
            )
            self._compaction_thread = thread
        thread.start()

    def _run_autocompaction(self) -> None:
        try:
            self.compact()
        except Exception as exc:  # noqa: BLE001 - recorded, never fatal
            with self._lock:
                self._counters.compaction_error = str(exc)

    def dataset_info(self) -> Dict[str, object]:
        """Version and sizes of the current dataset snapshot."""
        engine = self._engines[0]
        return {
            "version": engine.dataset_version,
            "data_objects": len(engine.data_objects),
            "feature_objects": len(engine.feature_objects),
        }

    # ------------------------------------------------------------------ #
    # serving

    def submit(self, spec: Mapping[str, object]) -> Dict[str, object]:
        """Serve one request object; returns its response payload.

        The request is parsed and validated on the caller's thread (a bad
        request fails alone, never its micro-batch), answered from the
        result cache when possible, and otherwise queued for the next
        micro-batch.

        Raises:
            InvalidQueryError: for an invalid request.
            OverloadError: when admission control sheds the request (queue
                full, or deadline blown on arrival / while queued); maps
                to HTTP 429.
            RuntimeError: when the service is not started or already shut
                down.
            TimeoutError: when no dispatcher answers within the configured
                request timeout.
        """
        parsed = self._parse(spec)
        return self._serve(parsed)

    def submit_many(
        self, specs: Sequence[Mapping[str, object]]
    ) -> List[Dict[str, object]]:
        """Serve a batch of request objects; responses in input order.

        All requests are validated up front (the whole batch is rejected if
        any is invalid, mirroring ``execute_many``), then enqueued together
        so they can share micro-batches.

        Batch submission is a trusted bulk surface (offline replay, the
        ``repro batch`` path) and bypasses admission control: shedding
        individual requests out of an all-or-nothing batch would break its
        contract.  Interactive traffic goes through :meth:`submit`.
        """
        parsed_list = [self._parse(spec) for spec in specs]
        pendings: List[Optional[PendingRequest]] = []
        responses: List[Optional[Dict[str, object]]] = []
        for parsed in parsed_list:
            started = time.monotonic()
            hit = self._lookup(parsed)
            if hit is not None:
                self._latency.record(time.monotonic() - started)
                pendings.append(None)
                responses.append(hit)
            else:
                pendings.append(self._enqueue(parsed, started))
                responses.append(None)
        for index, pending in enumerate(pendings):
            if pending is not None:
                responses[index] = self._await(pending)
        return [response for response in responses if response is not None]

    def _parse(self, spec: Mapping[str, object]) -> ParsedRequest:
        parsed = parse_query_spec(spec, self._defaults, ALGORITHM_CHOICES)
        self._engines[0].validate_combination(
            parsed.item.algorithm, parsed.item.score_mode
        )
        return parsed

    def _serve(self, parsed: ParsedRequest) -> Dict[str, object]:
        started = time.monotonic()
        admission = self._admission
        deadline = admission.resolve_deadline(parsed.deadline_ms)
        # Admission order: deadline first (a blown budget sheds without
        # consuming anything), then the cache (hits are goodput and never
        # occupy a slot), then the bounded queue.  With admission disabled
        # (queue_depth=0) every hook is a no-op and this is the classic
        # lookup-or-enqueue path.
        admission.on_arrival(deadline)
        hit = self._lookup(parsed)
        if hit is not None:
            self._latency.record(time.monotonic() - started)
            admission.admit_bypass()
            return hit
        admission.acquire()
        try:
            response = self._await(self._enqueue(parsed, started, deadline))
        except OverloadError:
            # Only the dispatcher's queue-expiry failure reaches here: the
            # request was admitted, then its deadline passed while queued.
            admission.release("expired")
            raise
        except BaseException:
            admission.release("failed")
            raise
        admission.release("completed", time.monotonic() - started)
        return response

    def _lookup(self, parsed: ParsedRequest) -> Optional[Dict[str, object]]:
        with self._lock:
            self._counters.submitted += 1
        if not self._result_cache.enabled:
            return None
        key = parsed.canonical_key(self._cache_version())
        payload = self._result_cache.get(key)
        if payload is None:
            return None
        payload["cached"] = True
        if not parsed.include_stats:
            payload.pop("stats", None)
        with self._lock:
            self._counters.cache_hits += 1
            self._counters.completed += 1
        return payload

    def _cache_version(self) -> "tuple[int, int]":
        """Composite result-cache version: base snapshot + delta overlay.

        Incremental writes do not bump the engines' ``dataset_version``
        (the base indexes stay valid); the delta version component makes
        every cached result unreachable the moment a write lands.
        """
        return (
            self._engines[0].dataset_version,
            self._delta.snapshot().version,
        )

    def _enqueue(
        self,
        parsed: ParsedRequest,
        started: float,
        deadline: Optional[float] = None,
    ) -> PendingRequest:
        return self._batcher.submit(
            _PendingPayload(
                parsed=parsed,
                submitted_monotonic=started,
                deadline_monotonic=deadline,
            )
        )

    def _await(self, pending: PendingRequest) -> Dict[str, object]:
        try:
            response = pending.wait(self.config.request_timeout_seconds)
        except BaseException:
            with self._lock:
                self._counters.failed += 1
            raise
        payload: _PendingPayload = pending.payload  # type: ignore[assignment]
        self._latency.record(time.monotonic() - payload.submitted_monotonic)
        with self._lock:
            self._counters.completed += 1
        return response  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # micro-batch execution (dispatcher threads)

    def _execute_batch(
        self, worker_index: int, batch: Sequence[PendingRequest]
    ) -> None:
        """Run one micro-batch on this dispatcher's engine (never raises).

        Holds the quiesce gate for the duration of the batch: a concurrent
        :meth:`swap_datasets` waits for it, and while a swap is pausing
        dispatch this blocks *before* touching the engine, so no batch ever
        runs against a half-swapped pool.
        """
        with self._pause_cond:
            while self._paused:
                self._pause_cond.wait()
            self._inflight_batches += 1
        try:
            self._execute_batch_inner(worker_index, batch)
        finally:
            with self._pause_cond:
                self._inflight_batches -= 1
                self._pause_cond.notify_all()

    def _execute_batch_inner(
        self, worker_index: int, batch: Sequence[PendingRequest]
    ) -> None:
        engine = self._engines[worker_index]
        admission = self._admission
        if admission.enabled:
            # Deadline enforcement at the last responsible moment: a
            # request whose budget expired while it waited is failed here,
            # *before* the engine runs -- its answer could no longer be
            # useful, and executing it would steal capacity from requests
            # that can still meet their deadlines.  Expired requests never
            # reach the engine, so they feed neither the result cache nor
            # the planner's calibration.
            live: List[PendingRequest] = []
            for pending in batch:
                payload: _PendingPayload = pending.payload  # type: ignore[assignment]
                if admission.expired_in_queue(payload.deadline_monotonic):
                    pending.fail(admission.queue_expiry_error())
                else:
                    live.append(pending)
            if not live:
                return
            batch = live
        payloads: List[_PendingPayload] = [p.payload for p in batch]  # type: ignore[misc]
        # The cache key embeds the dataset version *at execution time* (it
        # cannot change mid-batch: swaps wait for in-flight batches) plus
        # the delta snapshot pinned for the batch: writes land without
        # quiescing, so the snapshot's version -- not the live delta's --
        # is what the computed results actually reflect.
        snapshot = self._delta.snapshot()
        version = (engine.dataset_version, snapshot.version)
        try:
            results = engine.execute_many(
                [p.parsed.item for p in payloads], delta_snapshot=snapshot
            )
        except BaseException as exc:  # noqa: BLE001 - delivered to submitters
            for pending in batch:
                pending.fail(exc)
            return
        with self._lock:
            self._counters.batches += 1
            self._counters.batched_requests += len(batch)
            self._counters.max_batch = max(self._counters.max_batch, len(batch))
        for pending, payload, result in zip(batch, payloads, results):
            # Cache the stats-bearing payload, answer with what was asked:
            # a later stats-requesting hit can then still see them.
            stats_parsed = ParsedRequest(item=payload.parsed.item, include_stats=True)
            full = result_payload(stats_parsed, result)
            self._result_cache.put(payload.parsed.canonical_key(version), full)
            response = dict(full)
            if not payload.parsed.include_stats:
                response.pop("stats", None)
            pending.complete(response)

    # ------------------------------------------------------------------ #
    # introspection

    def stats(self) -> Dict[str, object]:
        """Aggregate serving statistics (the ``GET /stats`` payload)."""
        with self._lock:
            counters = _ServiceCounters(**vars(self._counters))
            uptime = (
                time.monotonic() - self._started_monotonic
                if self._started_monotonic is not None
                else 0.0
            )
        mean_batch = (
            counters.batched_requests / counters.batches if counters.batches else 0.0
        )
        engine = self._engines[0]
        stats: Dict[str, object] = {
            "uptime_seconds": uptime,
            "started": self._started,
            "closed": self._closed,
            "requests": {
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "result_cache_hits": counters.cache_hits,
            },
            "latency": self._latency.snapshot(),
            "batching": {
                "batches": counters.batches,
                "batched_requests": counters.batched_requests,
                "max_batch_observed": counters.max_batch,
                "mean_batch": mean_batch,
                "max_batch": self.config.max_batch,
                "window_seconds": self.config.batch_window_seconds,
                "queue_depth": self._batcher.queue_depth(),
            },
            "result_cache": {
                "capacity": self._result_cache.capacity,
                "size": len(self._result_cache),
                **self._result_cache.stats.as_dict(),
            },
            "admission": self._admission.snapshot(),
            "index_cache": self._index_cache.stats.as_dict(),
            "engines": {
                "count": len(self._engines),
                "backend_configured": engine.config.backend,
                "backends_active": [
                    e.active_backend_name for e in self._engines
                ],
            },
            "dataset": {
                "version": engine.dataset_version,
                "data_objects": len(engine.data_objects),
                "feature_objects": len(engine.feature_objects),
                "swaps": counters.swaps,
            },
            "ingest": {
                "delta": self._delta.snapshot().counts(),
                "cumulative": dict(vars(self._delta.counters)),
                "write_batches": counters.write_batches,
                "compactions": counters.compactions,
                "compact_threshold": self.config.compact_threshold,
                "last_compaction_unix": counters.last_compaction_unix,
                "last_compaction_error": counters.compaction_error,
            },
            "defaults": vars(self._defaults),
        }
        planner_stats: Dict[str, object] = {"mode": self.planner_mode}
        if self._planner is not None:
            planner_stats["decisions"] = self._planner.decisions
            planner_stats["calibration"] = self._planner.calibrator.snapshot()
            planner_stats["persistence"] = {
                "path": self.config.calibration_path,
                "seed_path": self.config.calibration_seed_path,
                "restored": counters.calibration_restored,
                "seeded": counters.calibration_seeded,
                "rejected": counters.calibration_rejected,
                "checkpoints": counters.checkpoints,
                "last_checkpoint_unix": counters.last_checkpoint_unix,
                "last_error": counters.checkpoint_error,
                "checkpoint_interval_seconds": (
                    self.config.checkpoint_interval_seconds
                ),
            }
        stats["planner"] = planner_stats
        return stats

    @property
    def admission(self) -> AdmissionController:
        """The admission controller (disabled when ``queue_depth=0``).

        The HTTP front-end duck-types on this attribute for its fast-shed
        probe (answer 429 before reading the body when the queue is full);
        routers expose their own controller under the same name so every
        deployment mode sheds with one contract.
        """
        return self._admission

    @property
    def planner(self) -> Optional[QueryPlanner]:
        """The shared planner (None when the planner is disabled)."""
        return self._planner

    @property
    def engines(self) -> List[SPQEngine]:
        """The warm engine pool (shared index cache and planner)."""
        return self._engines
