"""Simulated compute cluster: heterogeneous nodes with map/reduce task slots.

The paper's experiments run on a 16-node CDH cluster with three hardware
generations (nodes d1-d8: 8 cores, d9-d12: 12 cores, d13-d16: 16 cores).  The
:class:`SimulatedCluster` models that resource pool at the level that matters
for job-time simulation: how many reduce tasks can run concurrently, and how
fast each node executes work units.  Scheduling uses the classic
longest-processing-time (LPT) heuristic over task costs, which approximates
how the YARN scheduler fills free slots with pending reduce tasks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ClusterConfigurationError


@dataclass(frozen=True)
class ClusterNode:
    """One physical machine of the simulated cluster.

    Attributes:
        node_id: Name (``d1`` ... ``d16``).
        cores: Number of concurrently usable task slots.
        speed: Relative execution speed (work units per simulated second,
            before the cost model's global calibration).
    """

    node_id: str
    cores: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ClusterConfigurationError(f"node {self.node_id} must have >= 1 core")
        if self.speed <= 0:
            raise ClusterConfigurationError(f"node {self.node_id} must have positive speed")


def paper_cluster() -> "SimulatedCluster":
    """The 16-node cluster of Section 7.1 (d1-d8, d9-d12, d13-d16)."""
    nodes = (
        [ClusterNode(f"d{i}", cores=8) for i in range(1, 9)]
        + [ClusterNode(f"d{i}", cores=12) for i in range(9, 13)]
        + [ClusterNode(f"d{i}", cores=16) for i in range(13, 17)]
    )
    return SimulatedCluster(nodes)


class SimulatedCluster:
    """A pool of task slots used to schedule map and reduce tasks."""

    def __init__(self, nodes: Sequence[ClusterNode]) -> None:
        if not nodes:
            raise ClusterConfigurationError("cluster needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise ClusterConfigurationError("node ids must be unique")
        self.nodes: List[ClusterNode] = list(nodes)

    # ------------------------------------------------------------------ #

    @property
    def total_slots(self) -> int:
        """Total number of concurrent task slots across the cluster."""
        return sum(node.cores for node in self.nodes)

    def slot_speeds(self) -> List[float]:
        """Speed of every individual slot (a node contributes ``cores`` slots)."""
        speeds: List[float] = []
        for node in self.nodes:
            speeds.extend([node.speed] * node.cores)
        return speeds

    # ------------------------------------------------------------------ #
    # scheduling

    def schedule(self, task_costs: Sequence[float]) -> Tuple[float, Dict[int, int]]:
        """Schedule tasks with the given costs onto the cluster's slots.

        Uses the LPT heuristic: tasks are sorted by decreasing cost and each is
        assigned to the slot that will finish it earliest (accounting for slot
        speed).  Returns the makespan (simulated completion time of the last
        task) and a mapping from task index to slot index.

        A cost of zero is allowed (an empty reduce partition); negative costs
        are rejected.
        """
        if any(cost < 0 for cost in task_costs):
            raise ClusterConfigurationError("task costs must be non-negative")
        speeds = self.slot_speeds()
        # heap of (finish_time_of_slot, slot_index)
        slots: List[Tuple[float, int]] = [(0.0, i) for i in range(len(speeds))]
        heapq.heapify(slots)
        assignment: Dict[int, int] = {}
        ordered = sorted(range(len(task_costs)), key=lambda i: -task_costs[i])
        makespan = 0.0
        for task_index in ordered:
            finish, slot_index = heapq.heappop(slots)
            duration = task_costs[task_index] / speeds[slot_index]
            finish += duration
            assignment[task_index] = slot_index
            makespan = max(makespan, finish)
            heapq.heappush(slots, (finish, slot_index))
        return makespan, assignment

    def waves(self, num_tasks: int) -> int:
        """Number of scheduling waves needed for ``num_tasks`` equal tasks."""
        if num_tasks <= 0:
            return 0
        slots = self.total_slots
        return (num_tasks + slots - 1) // slots
