"""True multiprocess task execution.

Tasks run in a lazily created, reusable ``multiprocessing`` pool.  Everything
crossing the process boundary is an explicit, picklable payload:

* the **job spec** is pickled once per job and cached in each worker under a
  token, so the (tiny) spec rides along with task payloads but is unpickled
  at most once per worker per job;
* **map payloads** carry one input split of records;
* **reduce payloads** carry the partition's live shuffle entries plus -- for
  pre-partitioned batch runs -- either the partition's *shared-memory
  descriptor* ``(segment name, partition index)`` (preferred: workers attach
  the index's published columnar plane once and build/cache the partition's
  reduce block from it, so nothing dataset-sized crosses the pipe at all) or
  its *compact serialized form* (a pickle blob cached at the
  :class:`~repro.mapreduce.runtime.PreloadedShuffle`), so repeated queries
  never re-pickle the index's data-object entries;
* task payloads are submitted through ``Pool.map`` with a computed
  ``chunksize``, so the many small per-cell reduce tasks of an SPQ job are
  serialized in chunks instead of one IPC round-trip each.

Workers hand mutable state back explicitly: learned per-task caches travel
in :class:`~repro.execution.tasks.MapTaskResult.task_state` and per-task
counters in the reports; the orchestrator merges both in task-index order,
which keeps results bit-for-bit identical to serial execution.

The pool prefers the ``fork`` start method (cheap, inherits loaded modules)
and falls back to ``spawn`` where fork is unavailable.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import JobConfigurationError
from repro.execution.base import ExecutionBackend, ReduceTask
from repro.execution.tasks import (
    MapTaskResult,
    ReduceTaskReport,
    ShuffleEntry,
    run_map_task,
    run_reduce_task,
)

#: Worker-side cache of the most recent job spec, keyed by token.  One entry
#: only: a worker serves one job at a time, and evicting aggressively keeps
#: long-lived pools from accumulating dead query state.
_WORKER_JOBS: Dict[int, Any] = {}


def _worker_job(token: int, job_blob: bytes) -> Any:
    job = _WORKER_JOBS.get(token)
    if job is None:
        _WORKER_JOBS.clear()
        job = pickle.loads(job_blob)
        _WORKER_JOBS[token] = job
    return job


def _worker_run_map(
    payload: Tuple[int, bytes, int, Sequence[Any], int],
) -> MapTaskResult:
    token, job_blob, task_index, records, num_reducers = payload
    job = _worker_job(token, job_blob)
    return run_map_task(job, task_index, records, num_reducers)


#: Worker-side cache of attached shared-memory reduce planes, keyed by
#: segment name, LRU-capped: a long-lived pool may serve several dataset
#: snapshots (hot-swaps), but only a handful are ever live at once.
_WORKER_PLANES: "OrderedDict[str, Any]" = OrderedDict()
_WORKER_PLANE_CAP = 4


def _worker_plane(name: str) -> Any:
    plane = _WORKER_PLANES.get(name)
    if plane is None:
        from repro.execution.shm import attach_reduce_plane

        while len(_WORKER_PLANES) >= _WORKER_PLANE_CAP:
            _, evicted = _WORKER_PLANES.popitem(last=False)
            evicted.close()
        plane = attach_reduce_plane(name)
        _WORKER_PLANES[name] = plane
    else:
        _WORKER_PLANES.move_to_end(name)
    return plane


def _worker_run_reduce(
    payload: Tuple[
        int, bytes, int, Optional[bytes], List[ShuffleEntry], Optional[Tuple[str, int]]
    ],
) -> Tuple[List[Any], ReduceTaskReport]:
    token, job_blob, task_index, preloaded_blob, entries, preloaded_ref = payload
    job = _worker_job(token, job_blob)
    block = None
    if preloaded_ref is not None:
        segment_name, partition = preloaded_ref
        block = _worker_plane(segment_name).block(partition)
    if preloaded_blob is not None:
        bucket: List[ShuffleEntry] = pickle.loads(preloaded_blob)
        bucket.extend(entries)
    else:
        bucket = entries
    return run_reduce_task(job, task_index, bucket, block)


class ProcessBackend(ExecutionBackend):
    """Runs tasks in a lazily created, reusable ``multiprocessing.Pool``."""

    name = "process"

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise JobConfigurationError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.workers = workers
        self.start_method = start_method
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._tokens = itertools.count(1)

    # ------------------------------------------------------------------ #
    # pool and job-spec management

    def _get_pool(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _job_payload(self, job: Any) -> Tuple[int, bytes]:
        """A fresh token + pickled spec for ``job``, per phase call.

        Re-pickling per phase (the spec is tiny) rather than caching across
        phases guarantees workers never execute against a stale spec if a
        caller mutates the job between phases; within one phase the token
        lets each worker unpickle the spec at most once.
        """
        return next(self._tokens), pickle.dumps(job, pickle.HIGHEST_PROTOCOL)

    # ------------------------------------------------------------------ #
    # phase execution

    def run_map_tasks(
        self,
        job: Any,
        splits: Sequence[Sequence[Any]],
        num_reducers: int,
    ) -> List[MapTaskResult]:
        """Run map tasks through the pool (inline for a single split)."""
        if len(splits) <= 1 or self.workers == 1:
            # A single split (or a single worker) gains nothing from IPC.
            return [
                run_map_task(job, index, split, num_reducers)
                for index, split in enumerate(splits)
            ]
        token, job_blob = self._job_payload(job)
        payloads = [
            (token, job_blob, index, split, num_reducers)
            for index, split in enumerate(splits)
        ]
        return self._get_pool().map(_worker_run_map, payloads, chunksize=1)

    def run_reduce_tasks(
        self, job: Any, tasks: Sequence[ReduceTask]
    ) -> List[Tuple[List[Any], ReduceTaskReport]]:
        """Run reduce tasks through the pool with chunked payloads."""
        if not tasks:
            return []
        if self.workers == 1:
            # A one-process pool buys no parallelism; skip the IPC entirely.
            results = []
            for task in tasks:
                bucket, block = task.bucket_and_block()
                results.append(run_reduce_task(job, task.task_index, bucket, block))
            return results
        token, job_blob = self._job_payload(job)
        payloads = []
        for task in tasks:
            ref: Optional[Tuple[str, int]] = (
                task.preloaded_ref() if task.preloaded_ref is not None else None
            )
            if ref is not None:
                # Shared-memory descriptor: the worker attaches the published
                # plane and builds the block there; nothing preloaded ships.
                blob: Optional[bytes] = None
                entries = task.entries
            elif task.preloaded_blob is not None:
                blob = task.preloaded_blob()
                entries = task.entries
            elif task.preloaded_entries:
                # No compact form available: fall back to shipping the
                # combined bucket (still correct, just re-pickled per run).
                blob = None
                entries = task.materialize()
            else:
                blob = None
                entries = task.entries
            payloads.append((token, job_blob, task.task_index, blob, entries, ref))
        # Chunked shuffle serialization: batch the many small per-partition
        # payloads so each worker round-trip carries a meaningful amount of
        # work instead of one tiny task.
        chunksize = max(1, len(payloads) // (self.workers * 4))
        return self._get_pool().map(_worker_run_reduce, payloads, chunksize=chunksize)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the pool down (idempotent; detaches before tearing down)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.terminate()
