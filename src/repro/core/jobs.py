"""The paper's three algorithms expressed as MapReduce jobs.

All three jobs share the same structure (single MapReduce job, Section 4.2):

* **Map**: assign each object to its enclosing grid cell; drop feature objects
  with no common keyword with the query (the pruning rule); duplicate feature
  objects into every neighbouring cell with ``MINDIST <= r`` (Lemma 1); emit
  records under a composite key ``(cell_id, secondary)``.
* **Partition**: by cell id only, so every object of a cell reaches the same
  reducer (the paper's custom Partitioner).
* **Sort**: by the composite key, so data objects precede feature objects and
  feature objects arrive in the algorithm-specific order (the paper's custom
  Comparator).
* **Group**: by cell id, so one reduce call processes one cell.
* **Reduce**: load the cell's data objects in memory and scan feature objects
  in order, maintaining the top-k list; the two eSPQ variants stop early.

Reduce output records are ``(cell_id, object_id, score)`` triples; the engine
merges the per-cell top-k lists into the global top-k.

Work counters (group ``"work"``) recorded by the reducers:

* ``features_examined``  -- feature objects actually read before termination,
* ``score_computations`` -- data-feature distance/score evaluations,
which the cluster cost model converts into simulated reduce time.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.index.columns import DataBlock, dataplane_mode
from repro.index.records import PreAssignedData, PreAssignedFeature
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob
from repro.core.scoring import feature_contribution
from repro.model.objects import DataObject, FeatureObject
from repro.model.query import SpatialPreferenceQuery
from repro.model.result import TopKList
from repro.spatial.geometry import candidate_halfwidth
from repro.spatial.grid import UniformGrid
from repro.spatial.partitioning import GridPartitioner
from repro.text.similarity import JaccardScorer, non_spatial_score, upper_bound_for_length

#: Tag values of the pSPQ composite key: data objects sort before features.
TAG_DATA = 0
TAG_FEATURE = 1

#: Work-counter names.
WORK_GROUP = "work"
FEATURES_EXAMINED = "features_examined"
SCORE_COMPUTATIONS = "score_computations"

#: Informational counters (group ``"spq"``).
SPQ_GROUP = "spq"
FEATURES_PRUNED = "features_pruned"
FEATURE_DUPLICATES = "feature_duplicates"
DATA_OBJECTS = "data_objects"
FEATURES_KEPT = "features_kept"
EARLY_TERMINATIONS = "early_terminations"


class _CellData:
    """One reduce group's data objects, accumulated in columnar form.

    A group's data arrives either as one preinjected :class:`DataBlock`
    (adopted by reference -- blocks are cached per dataset snapshot and must
    never be mutated) or as individual :class:`DataObject` values from the
    live shuffle stream.  ``objs``/``xs``/``ys`` stay parallel and in
    storage/arrival order -- the exact order the per-object reduce would
    have streamed the cell's data objects.
    """

    __slots__ = ("objs", "xs", "ys", "_block", "_shared")

    def __init__(self) -> None:
        self.objs: List[DataObject] = []
        self.xs: List[float] = []
        self.ys: List[float] = []
        self._block: Optional[DataBlock] = None
        self._shared = False

    def __len__(self) -> int:
        return len(self.objs)

    def adopt(self, block: DataBlock) -> None:
        """Take a shared block's columns by reference (copy-on-append)."""
        if self._block is None and not self.objs:
            self._block = block
            self._shared = True
            self.objs = block.objs
            self.xs = block.xs
            self.ys = block.ys
            return
        self._thaw()
        self.objs.extend(block.objs)
        self.xs.extend(block.xs)
        self.ys.extend(block.ys)

    def _thaw(self) -> None:
        if self._shared:
            self.objs = list(self.objs)
            self.xs = list(self.xs)
            self.ys = list(self.ys)
            self._shared = False
        self._block = None

    def append(self, obj: DataObject) -> None:
        if self._shared or self._block is not None:
            self._thaw()
        self.objs.append(obj)
        self.xs.append(obj.x)
        self.ys.append(obj.y)

    def candidates(self, low: float, high: float) -> List[int]:
        """Rows whose x lies in ``[low, high]`` (see DataBlock.candidate_rows).

        Delegating to the adopted block caches the x-sorted permutation per
        cell per dataset snapshot, across queries and job classes.  For live
        streams the columns are frozen on first use: the composite-key sort
        delivers every data record before the first feature, so the data set
        is complete by the time a feature needs candidates (a later append
        would copy-on-write and drop the frozen block).
        """
        block = self._block
        if block is None:
            block = self._block = DataBlock(0, self.objs, self.xs, self.ys)
        return block.candidate_rows(low, high)

    def oids(self) -> List[str]:
        """Parallel oid column (cached on the block once data is final)."""
        block = self._block
        if block is None:
            block = self._block = DataBlock(0, self.objs, self.xs, self.ys)
        return block.oids


class _SPQJobBase(MapReduceJob):
    """Shared map-side logic of the three SPQ jobs.

    Args:
        query: The query ``q(k, r, W)``.
        grid: Query-time uniform grid (one cell per reduce task).
        prune_irrelevant: When True (the default, and what the paper does),
            feature objects sharing no keyword with the query are dropped in
            the map phase.  Setting it to False keeps them, which is only
            useful for the ablation benchmark quantifying the value of the
            pruning rule -- the query result is unaffected either way.
    """

    #: A cell whose reduce group holds only (preloaded) data objects has no
    #: feature to score against, so all three algorithms output nothing for
    #: it; the runner may skip such reduce tasks in pre-partitioned runs.
    preloaded_only_partitions_are_empty = True

    def __init__(
        self,
        query: SpatialPreferenceQuery,
        grid: UniformGrid,
        prune_irrelevant: bool = True,
    ) -> None:
        self.query = query
        self.grid = grid
        self.prune_irrelevant = prune_irrelevant
        self.partitioner = GridPartitioner(grid, query.radius)
        # Captured at construction so one query runs one data plane end to
        # end even if the environment changes mid-flight; pickled to worker
        # processes along with the rest of the job spec.
        self.dataplane = dataplane_mode()
        self._scorer: Optional[JaccardScorer] = None
        # oid -> serialized size; a feature's size is recomputed for every
        # duplicated copy otherwise, which shows up hot in profiles.
        self._feature_sizes: Dict[str, int] = {}

    @property
    def scorer(self) -> JaccardScorer:
        """Per-query memoizing Jaccard scorer (lazily built, not pickled)."""
        scorer = self._scorer
        if scorer is None:
            scorer = self._scorer = JaccardScorer(self.query.keywords)
        return scorer

    def share_feature_sizes(self, cache: Dict[str, int]) -> None:
        """Adopt a size memo that outlives this job (see DatasetIndex)."""
        self._feature_sizes = cache

    # -------------------------------------------------------------- #
    # process-boundary support: the job is a picklable spec

    def __getstate__(self) -> Dict[str, Any]:
        # The size memo may be shared with a DatasetIndex (and can be large);
        # it is an optimization only, so a worker-process copy of the job
        # starts with an empty per-task cache and hands what it learned back
        # through task_state() instead of dragging shared mutable state
        # across the process boundary.
        state = dict(self.__dict__)
        state["_feature_sizes"] = {}
        state["_scorer"] = None
        return state

    def task_state(self) -> Any:
        """The sizes this task memoized, handed back to the orchestrator."""
        return self._feature_sizes or None

    def merge_task_state(self, state: Any) -> None:
        if state and state is not self._feature_sizes:
            self._feature_sizes.update(state)

    # -------------------------------------------------------------- #
    # map side

    def map(self, record: Any, counters: Counters) -> Iterable[Tuple[Any, Any]]:
        if isinstance(record, PreAssignedData):
            # Pre-partitioned input from a DatasetIndex: the spatial work of
            # the map phase is already done, emit the same key-value pair the
            # normal path would produce.
            counters.increment(SPQ_GROUP, DATA_OBJECTS)
            yield self._data_key(record.cell_id), record.obj
            return
        if isinstance(record, PreAssignedFeature):
            # Keyword pruning happened index-side (the record would not exist
            # otherwise), so the feature counts as kept, not pruned.
            counters.increment(SPQ_GROUP, FEATURES_KEPT)
            counters.increment(SPQ_GROUP, FEATURE_DUPLICATES, len(record.cell_ids) - 1)
            self._count_map_feature_work(len(record.cell_ids), counters)
            value = self._feature_value(record.obj)
            for cell_id in record.cell_ids:
                yield self._feature_key(cell_id, record.obj), value
            return
        if isinstance(record, DataObject):
            counters.increment(SPQ_GROUP, DATA_OBJECTS)
            cell_id = self.partitioner.assign_data_object(record)
            yield self._data_key(cell_id), record
            return
        if not isinstance(record, FeatureObject):
            raise TypeError(f"unsupported input record type: {type(record)!r}")
        if self.prune_irrelevant and not record.has_common_keyword(self.query.keywords):
            # Pruning rule (Algorithm 1, line 9): irrelevant features cannot
            # contribute to any score and are never shuffled.
            counters.increment(SPQ_GROUP, FEATURES_PRUNED)
            return
        counters.increment(SPQ_GROUP, FEATURES_KEPT)
        cells = self.partitioner.assign_feature_object(record)
        counters.increment(SPQ_GROUP, FEATURE_DUPLICATES, len(cells) - 1)
        self._count_map_feature_work(len(cells), counters)
        for cell_id in cells:
            yield self._feature_key(cell_id, record), self._feature_value(record)

    def _data_key(self, cell_id: int) -> Tuple:
        raise NotImplementedError

    def _feature_key(self, cell_id: int, feature: FeatureObject) -> Tuple:
        raise NotImplementedError

    def _feature_value(self, feature: FeatureObject) -> Any:
        return feature

    def _count_map_feature_work(self, copies: int, counters: Counters) -> None:
        """Record algorithm-specific map-side work for one kept feature.

        The base jobs do none (their composite keys are free to build);
        eSPQsco overrides this -- its map phase computes the Jaccard score
        ``w(f, q)`` once for the shipped value and once per emitted copy's
        key, which the cost model charges as map-side work units.
        """

    # -------------------------------------------------------------- #
    # routing: partition and group on the cell id only

    def partition(self, key: Tuple, num_reducers: int) -> int:
        return (key[0] - 1) % num_reducers

    def group_key(self, key: Tuple) -> int:
        return key[0]

    def sort_key(self, key: Tuple) -> Tuple:
        return key

    def estimated_record_size(self, key: Any, value: Any) -> int:
        # Text-serialized record size: coordinates plus keywords for features.
        if isinstance(value, tuple):
            value = value[0]
        if isinstance(value, FeatureObject):
            size = self._feature_sizes.get(value.oid)
            if size is None:
                size = 24 + sum(len(word) + 1 for word in value.keywords)
                self._feature_sizes[value.oid] = size
            return size
        return 24


class PSPQJob(_SPQJobBase):
    """pSPQ (Section 4): grid partitioning, exhaustive per-cell nested loop.

    In addition to the paper's range score, this job supports the truncated
    *influence* score variant (see :mod:`repro.core.scoring`): the map side is
    unchanged (Lemma 1 only depends on the radius cutoff), and in the reduce
    side the textual score ``w(f, q)`` is still a valid upper bound on any
    feature's contribution, so the threshold check of Algorithm 2 remains
    correct.  The early-termination jobs are defined for the range score only,
    as in the paper.
    """

    name = "pSPQ"

    def __init__(
        self,
        query: SpatialPreferenceQuery,
        grid: UniformGrid,
        prune_irrelevant: bool = True,
        score_mode: str = "range",
    ) -> None:
        super().__init__(query, grid, prune_irrelevant=prune_irrelevant)
        if score_mode not in ("range", "influence"):
            raise ValueError(
                f"pSPQ supports score modes 'range' and 'influence', got {score_mode!r}"
            )
        self.score_mode = score_mode

    def _data_key(self, cell_id: int) -> Tuple:
        return (cell_id, TAG_DATA)

    def _feature_key(self, cell_id: int, feature: FeatureObject) -> Tuple:
        return (cell_id, TAG_FEATURE)

    def reduce(
        self, group: int, values: Iterator[Any], counters: Counters
    ) -> Iterable[Tuple[int, str, float]]:
        """Per-cell nested-loop reduce of pSPQ (paper Algorithm 2).

        The columnar path accumulates the cell's data as parallel columns
        (adopting a preinjected :class:`DataBlock` when the runner provides
        one) and, per surviving feature, applies the exact squared-distance
        predicate only to the x-candidate window -- a strict superset of the
        matches (:func:`candidate_halfwidth`), offered in storage order, so
        results, scores and counters are bit-for-bit those of the object
        path (``REPRO_DATAPLANE=object``), which is kept verbatim below as
        the oracle.
        """
        if self.dataplane != "columnar":
            return self._reduce_objects(group, values, counters)
        query = self.query
        data = _CellData()
        top = TopKList(query.k)
        examined = 0
        computations = 0
        range_mode = self.score_mode == "range"
        radius = query.radius
        squared_radius = radius * radius
        scorer = self.scorer
        offer = top.offer
        for value in values:
            if value.__class__ is DataBlock:
                data.adopt(value)
                continue
            if isinstance(value, DataObject):
                data.append(value)
                continue
            feature: FeatureObject = value
            examined += 1
            score = scorer.score(feature.keywords)
            if score <= top.threshold:
                # The feature cannot improve the current top-k; skip the
                # nested loop (Algorithm 2, line 9) but keep reading input.
                continue
            # The cost model charges one computation per (data, feature)
            # pair of the cell whether or not the window filter tested it.
            computations += len(data)
            if not data.objs:
                continue
            if range_mode:
                fx = feature.x
                fy = feature.y
                window = candidate_halfwidth(radius, abs(fx) + radius)
                xs = data.xs
                ys = data.ys
                objs = data.objs
                matched = [
                    row
                    for row in data.candidates(fx - window, fx + window)
                    if (dx := xs[row] - fx) * dx + (dy := ys[row] - fy) * dy
                    <= squared_radius
                ]
                matched.sort()
                for row in matched:
                    offer(objs[row], score)
            else:
                for obj in data.objs:
                    contribution = feature_contribution(
                        obj, feature, query, self.score_mode
                    )
                    if contribution > 0.0:
                        offer(obj, contribution)
        if examined:
            counters.increment(WORK_GROUP, FEATURES_EXAMINED, examined)
        if computations:
            counters.increment(WORK_GROUP, SCORE_COMPUTATIONS, computations)
        return [(group, entry.obj.oid, entry.score) for entry in top.top()]

    def _reduce_objects(
        self, group: int, values: Iterator[Any], counters: Counters
    ) -> Iterable[Tuple[int, str, float]]:
        """The original per-object reduce: the columnar path's oracle."""
        data_objects: List[DataObject] = []
        top = TopKList(self.query.k)
        examined = 0
        computations = 0
        range_mode = self.score_mode == "range"
        radius = self.query.radius
        for value in values:
            if isinstance(value, DataObject):
                data_objects.append(value)
                continue
            feature: FeatureObject = value
            examined += 1
            score = non_spatial_score(feature.keywords, self.query.keywords)
            if score <= top.threshold:
                continue
            computations += len(data_objects)
            if range_mode:
                for obj in data_objects:
                    if obj.within_distance(feature, radius):
                        top.offer(obj, score)
            else:
                for obj in data_objects:
                    contribution = feature_contribution(
                        obj, feature, self.query, self.score_mode
                    )
                    if contribution > 0.0:
                        top.offer(obj, contribution)
        if examined:
            counters.increment(WORK_GROUP, FEATURES_EXAMINED, examined)
        if computations:
            counters.increment(WORK_GROUP, SCORE_COMPUTATIONS, computations)
        return [(group, entry.obj.oid, entry.score) for entry in top.top()]


class ESPQLenJob(_SPQJobBase):
    """eSPQlen (Section 5.1): features sorted by increasing keyword count.

    The reducer stops as soon as the length-based upper bound ``w̄(f, q)``
    (Equation 1) of the next feature cannot exceed the current threshold
    ``tau`` (Lemma 2).
    """

    name = "eSPQlen"

    def _data_key(self, cell_id: int) -> Tuple:
        return (cell_id, 0)

    def _feature_key(self, cell_id: int, feature: FeatureObject) -> Tuple:
        return (cell_id, feature.keyword_count)

    def reduce(
        self, group: int, values: Iterator[Any], counters: Counters
    ) -> Iterable[Tuple[int, str, float]]:
        """Length-bound early-terminating reduce of eSPQlen (Algorithm 3).

        Columnar path: same candidate-window range scan as pSPQ, with the
        Lemma 2 bound/termination logic untouched (it only reads the feature
        stream and the top-k threshold).  ``REPRO_DATAPLANE=object`` selects
        the original per-object loop below as the oracle.
        """
        if self.dataplane != "columnar":
            return self._reduce_objects(group, values, counters)
        query = self.query
        data = _CellData()
        top = TopKList(query.k)
        query_len = query.keyword_count
        k = query.k
        radius = query.radius
        squared_radius = radius * radius
        scorer = self.scorer
        offer = top.offer
        examined = 0
        computations = 0
        for value in values:
            if value.__class__ is DataBlock:
                data.adopt(value)
                continue
            if isinstance(value, DataObject):
                data.append(value)
                continue
            feature: FeatureObject = value
            examined += 1
            bound = upper_bound_for_length(feature.keyword_count, query_len)
            tau = top.threshold
            if len(top) >= k and tau >= bound:
                # Lemma 2: no remaining feature (all at least this long) can
                # improve the k-th best score.
                counters.increment(SPQ_GROUP, EARLY_TERMINATIONS)
                break
            score = scorer.score(feature.keywords)
            if score <= tau:
                continue
            computations += len(data)
            if not data.objs:
                continue
            fx = feature.x
            fy = feature.y
            window = candidate_halfwidth(radius, abs(fx) + radius)
            xs = data.xs
            ys = data.ys
            objs = data.objs
            matched = [
                row
                for row in data.candidates(fx - window, fx + window)
                if (dx := xs[row] - fx) * dx + (dy := ys[row] - fy) * dy
                <= squared_radius
            ]
            matched.sort()
            for row in matched:
                offer(objs[row], score)
        if examined:
            counters.increment(WORK_GROUP, FEATURES_EXAMINED, examined)
        if computations:
            counters.increment(WORK_GROUP, SCORE_COMPUTATIONS, computations)
        return [(group, entry.obj.oid, entry.score) for entry in top.top()]

    def _reduce_objects(
        self, group: int, values: Iterator[Any], counters: Counters
    ) -> Iterable[Tuple[int, str, float]]:
        """The original per-object reduce: the columnar path's oracle."""
        data_objects: List[DataObject] = []
        top = TopKList(self.query.k)
        query_len = self.query.keyword_count
        radius = self.query.radius
        examined = 0
        computations = 0
        for value in values:
            if isinstance(value, DataObject):
                data_objects.append(value)
                continue
            feature: FeatureObject = value
            examined += 1
            bound = upper_bound_for_length(feature.keyword_count, query_len)
            tau = top.threshold
            if len(top) >= self.query.k and tau >= bound:
                counters.increment(SPQ_GROUP, EARLY_TERMINATIONS)
                break
            score = non_spatial_score(feature.keywords, self.query.keywords)
            if score <= tau:
                continue
            computations += len(data_objects)
            for obj in data_objects:
                if obj.within_distance(feature, radius):
                    top.offer(obj, score)
        if examined:
            counters.increment(WORK_GROUP, FEATURES_EXAMINED, examined)
        if computations:
            counters.increment(WORK_GROUP, SCORE_COMPUTATIONS, computations)
        return [(group, entry.obj.oid, entry.score) for entry in top.top()]


class ESPQScoJob(_SPQJobBase):
    """eSPQsco (Section 5.2): features sorted by decreasing Jaccard score.

    The map phase computes ``w(f, q)`` and embeds it in the composite key; the
    reducer reports data objects as soon as they are found within distance
    ``r`` of a feature, and stops after ``k`` objects have been reported
    (Lemma 3).
    """

    name = "eSPQsco"

    #: Secondary-key value for data objects: strictly above any Jaccard score
    #: so that, under the descending sort, data objects come first.
    DATA_SORT_VALUE = 2.0

    def _data_key(self, cell_id: int) -> Tuple:
        return (cell_id, self.DATA_SORT_VALUE)

    def _feature_key(self, cell_id: int, feature: FeatureObject) -> Tuple:
        # Memoized: each duplicated copy of a feature reuses the identical
        # float; the map-side work counter below still charges every copy.
        return (cell_id, self.scorer.score(feature.keywords))

    def _feature_value(self, feature: FeatureObject) -> Any:
        # Carry the map-side score so the reducer does not recompute it.
        return (feature, self.scorer.score(feature.keywords))

    def _count_map_feature_work(self, copies: int, counters: Counters) -> None:
        # One score for the value plus one per emitted copy's composite key.
        counters.increment(
            counter_names.GROUP_MAP, counter_names.MAP_SCORE_COMPUTATIONS, copies + 1
        )

    def sort_key(self, key: Tuple) -> Tuple:
        """Secondary sort: data objects first, then descending score."""
        # Descending order of the secondary component: data objects (2.0)
        # first, then features from highest to lowest score.
        return (key[0], -key[1])

    def reduce(
        self, group: int, values: Iterator[Any], counters: Counters
    ) -> Iterable[Tuple[int, str, float]]:
        """Report-as-you-go early-terminating reduce of eSPQsco (Algorithm 4).

        Columnar path: a storage-order scan over the coordinate columns with
        the squared-distance predicate inlined.  No candidate window here --
        this reducer's ``score_computations`` counter charges each pair it
        actually examines (unlike the cell-sized model counter of the other
        two), so skipping pairs would change the counters the cost model
        calibrates against.  ``REPRO_DATAPLANE=object`` selects the original
        per-object loop below as the oracle.
        """
        if self.dataplane != "columnar":
            return self._reduce_objects(group, values, counters)
        data = _CellData()
        reported: List[Tuple[int, str, float]] = []
        reported_ids: set = set()
        k = self.query.k
        radius = self.query.radius
        squared_radius = radius * radius
        examined = 0
        computations = 0
        done = False
        for value in values:
            if value.__class__ is DataBlock:
                data.adopt(value)
                continue
            if isinstance(value, DataObject):
                data.append(value)
                continue
            feature, score = value
            examined += 1
            if score <= 0.0:
                # Scores are sorted descending: nothing below can contribute.
                counters.increment(SPQ_GROUP, EARLY_TERMINATIONS)
                break
            fx = feature.x
            fy = feature.y
            xs = data.xs
            ys = data.ys
            for row, oid in enumerate(data.oids()):
                if oid in reported_ids:
                    continue
                computations += 1
                dx = xs[row] - fx
                dy = ys[row] - fy
                if dx * dx + dy * dy <= squared_radius:
                    # Lemma 3: the feature currently examined has the highest
                    # score among all unseen features, so tau(obj) == score.
                    reported.append((group, oid, score))
                    reported_ids.add(oid)
                    if len(reported) >= k:
                        counters.increment(SPQ_GROUP, EARLY_TERMINATIONS)
                        done = True
                        break
            if done:
                break
        if examined:
            counters.increment(WORK_GROUP, FEATURES_EXAMINED, examined)
        if computations:
            counters.increment(WORK_GROUP, SCORE_COMPUTATIONS, computations)
        return reported

    def _reduce_objects(
        self, group: int, values: Iterator[Any], counters: Counters
    ) -> Iterable[Tuple[int, str, float]]:
        """The original per-object reduce: the columnar path's oracle."""
        data_objects: List[DataObject] = []
        reported: List[Tuple[int, str, float]] = []
        reported_ids: set = set()
        k = self.query.k
        radius = self.query.radius
        examined = 0
        computations = 0
        done = False
        for value in values:
            if isinstance(value, DataObject):
                data_objects.append(value)
                continue
            feature, score = value
            examined += 1
            if score <= 0.0:
                counters.increment(SPQ_GROUP, EARLY_TERMINATIONS)
                break
            for obj in data_objects:
                if obj.oid in reported_ids:
                    continue
                computations += 1
                if obj.within_distance(feature, radius):
                    reported.append((group, obj.oid, score))
                    reported_ids.add(obj.oid)
                    if len(reported) >= k:
                        counters.increment(SPQ_GROUP, EARLY_TERMINATIONS)
                        done = True
                        break
            if done:
                break
        if examined:
            counters.increment(WORK_GROUP, FEATURES_EXAMINED, examined)
        if computations:
            counters.increment(WORK_GROUP, SCORE_COMPUTATIONS, computations)
        return reported
