"""Cluster membership registry: node liveness, epochs, replica ordering.

One :class:`ClusterMembership` instance is owned by the
:class:`~repro.cluster.router.ClusterRouter` and is the single source of
truth about the fleet: which node serves which shard slice, which nodes are
currently believed alive, and which dataset epoch each node last reported.
Three inputs feed it, all through the same thread-safe accounting:

* **registration** -- every node endpoint is registered once, with its
  shard index and replica rank (the rank fixes the primary/backup order of
  a shard's replicas);
* **heartbeats** -- the router's heartbeat thread probes ``GET /heartbeat``
  on every node and reports success (with the node's self-described
  identity and dataset epoch) or failure here;
* **request outcomes** -- a scatter request that fails against a node
  counts exactly like a missed heartbeat, so a crashed node is usually
  demoted by the very traffic it failed, faster than the next heartbeat
  tick.

Liveness is the classic heartbeat/timeout rule (the HDFS dead-node
criterion at a small scale): a node is marked ``dead`` after
``max_misses`` consecutive failures *or* when nothing has been heard from
it for ``liveness_timeout`` seconds (:meth:`ClusterMembership.sweep`).
One success re-admits it -- rejoin is the same code path as the initial
registration becoming healthy.

A node is **eligible** for routing only when it is alive *and* its last
reported dataset epoch matches the cluster's current epoch: a node that
was dead through a hot swap (or was restarted from a stale boot file)
answers heartbeats again but keeps serving the old snapshot, and routing
to it would silently mix dataset versions.  The router's heartbeat loop
resynchronises such nodes (``POST /datasets`` with the current snapshot)
and eligibility follows automatically once the node reports the new epoch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Node states reported under ``stats()["cluster"]["nodes"]``.
NODE_ALIVE = "alive"
NODE_SUSPECT = "suspect"
NODE_DEAD = "dead"


@dataclass
class NodeStatus:
    """Mutable per-node record (guarded by the membership lock).

    Attributes:
        url: The node's base URL (``http://host:port``) -- the registry key.
        shard_index: The shard slice this node serves.
        replica_rank: Order among the shard's replicas (0 = primary).
        state: ``alive`` / ``suspect`` / ``dead``.
        node_id: The node's self-reported identity (changes when the
            process restarts; None until the first successful probe).
        dataset_epoch: The dataset epoch the node last reported.
        dataset_version: The node-local swap counter it last reported.
        misses: Consecutive failed probes/requests since the last success.
        last_success_monotonic: ``time.monotonic`` of the last success
            (None before any).
        failovers: Requests this node failed that a replica then answered.
    """

    url: str
    shard_index: int
    replica_rank: int
    state: str = NODE_ALIVE
    node_id: Optional[str] = None
    dataset_epoch: Optional[str] = None
    dataset_version: Optional[int] = None
    misses: int = 0
    last_success_monotonic: Optional[float] = None
    failovers: int = 0

    def as_dict(self) -> Dict[str, object]:
        """The ``stats()`` row of this node."""
        return {
            "url": self.url,
            "shard": self.shard_index,
            "replica": self.replica_rank,
            "state": self.state,
            "node_id": self.node_id,
            "dataset_epoch": self.dataset_epoch,
            "dataset_version": self.dataset_version,
            "consecutive_misses": self.misses,
            "seconds_since_contact": (
                time.monotonic() - self.last_success_monotonic
                if self.last_success_monotonic is not None
                else None
            ),
            "failovers": self.failovers,
        }


@dataclass
class MembershipConfig:
    """Liveness knobs of one :class:`ClusterMembership`.

    Attributes:
        max_misses: Consecutive failures after which a node is ``dead``
            (the first failure already demotes it to ``suspect``).
        liveness_timeout: Seconds of silence after which :meth:`sweep`
            marks a node ``dead`` even without ``max_misses`` explicit
            failures (covers a hung node that accepts connections but
            never answers its heartbeat in time).
    """

    max_misses: int = 3
    liveness_timeout: float = 6.0


class ClusterMembership:
    """Thread-safe registry of shard-node endpoints and their liveness."""

    def __init__(self, config: Optional[MembershipConfig] = None) -> None:
        """An empty registry; populate with :meth:`register`."""
        self.config = config or MembershipConfig()
        if self.config.max_misses < 1:
            raise ValueError(
                f"max_misses must be >= 1, got {self.config.max_misses}"
            )
        if self.config.liveness_timeout <= 0:
            raise ValueError(
                "liveness_timeout must be > 0, "
                f"got {self.config.liveness_timeout}"
            )
        self._lock = threading.Lock()
        self._nodes: Dict[str, NodeStatus] = {}
        #: Shard index -> node URLs in replica-rank order.
        self._by_shard: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------ #
    # registration

    def register(
        self, url: str, shard_index: int, dataset_epoch: Optional[str] = None
    ) -> NodeStatus:
        """Add one node endpoint; replica rank is assigned in call order.

        Nodes start ``alive`` with the given epoch (the router registers
        endpoints it has just health-checked); the first heartbeat fills in
        the node identity.

        Raises:
            ValueError: when ``url`` is already registered.
        """
        with self._lock:
            if url in self._nodes:
                raise ValueError(f"node {url!r} is already registered")
            rank = len(self._by_shard.get(shard_index, []))
            status = NodeStatus(
                url=url,
                shard_index=shard_index,
                replica_rank=rank,
                dataset_epoch=dataset_epoch,
                last_success_monotonic=time.monotonic(),
            )
            self._nodes[url] = status
            self._by_shard.setdefault(shard_index, []).append(url)
            return status

    # ------------------------------------------------------------------ #
    # accounting

    def mark_success(
        self,
        url: str,
        node_id: Optional[str] = None,
        dataset_epoch: Optional[str] = None,
        dataset_version: Optional[int] = None,
    ) -> None:
        """Record one successful probe/request: re-admits a dead node."""
        with self._lock:
            status = self._nodes[url]
            status.state = NODE_ALIVE
            status.misses = 0
            status.last_success_monotonic = time.monotonic()
            if node_id is not None:
                status.node_id = node_id
            if dataset_epoch is not None:
                status.dataset_epoch = dataset_epoch
            if dataset_version is not None:
                status.dataset_version = dataset_version

    def mark_failure(self, url: str) -> str:
        """Record one failed probe/request; returns the resulting state."""
        with self._lock:
            status = self._nodes[url]
            status.misses += 1
            if status.misses >= self.config.max_misses:
                status.state = NODE_DEAD
            elif status.state == NODE_ALIVE:
                status.state = NODE_SUSPECT
            return status.state

    def record_failover(self, url: str) -> None:
        """Count one request this node failed that a replica answered."""
        with self._lock:
            self._nodes[url].failovers += 1

    def sweep(self) -> List[str]:
        """Apply the liveness timeout; returns URLs newly marked dead."""
        deadline = time.monotonic() - self.config.liveness_timeout
        newly_dead: List[str] = []
        with self._lock:
            for status in self._nodes.values():
                if status.state == NODE_DEAD:
                    continue
                last = status.last_success_monotonic
                if last is not None and last < deadline:
                    status.state = NODE_DEAD
                    newly_dead.append(status.url)
        return newly_dead

    # ------------------------------------------------------------------ #
    # routing views

    def replicas(self, shard_index: int) -> List[NodeStatus]:
        """All replicas of one shard, in replica-rank order (copies)."""
        with self._lock:
            return [
                self._copy(self._nodes[url])
                for url in self._by_shard.get(shard_index, [])
            ]

    def candidates(
        self, shard_index: int, dataset_epoch: Optional[str]
    ) -> List[str]:
        """Routing-eligible node URLs for one shard, primary first.

        Eligible = not ``dead`` and (when an epoch is required) last
        reported exactly that dataset epoch.  ``suspect`` nodes stay
        eligible -- one transient miss must not black-hole a shard that
        has no other replica.
        """
        with self._lock:
            urls = self._by_shard.get(shard_index, [])
            return [
                url
                for url in urls
                if self._nodes[url].state != NODE_DEAD
                and (
                    dataset_epoch is None
                    or self._nodes[url].dataset_epoch == dataset_epoch
                )
            ]

    def stale_nodes(self, dataset_epoch: str) -> List[str]:
        """Non-dead nodes whose last reported epoch is not ``dataset_epoch``."""
        with self._lock:
            return [
                status.url
                for status in self._nodes.values()
                if status.state != NODE_DEAD
                and status.dataset_epoch != dataset_epoch
            ]

    def urls(self) -> List[str]:
        """Every registered node URL, in registration order."""
        with self._lock:
            return list(self._nodes)

    def shard_indexes(self) -> List[int]:
        """Every shard index with at least one registered node, sorted."""
        with self._lock:
            return sorted(self._by_shard)

    def status_of(self, url: str) -> NodeStatus:
        """A copy of one node's status row.

        Raises:
            KeyError: for an unregistered URL.
        """
        with self._lock:
            return self._copy(self._nodes[url])

    def snapshot(self) -> List[Dict[str, object]]:
        """The ``stats()`` rows of every node, in registration order."""
        with self._lock:
            return [status.as_dict() for status in self._nodes.values()]

    def alive_count(self) -> int:
        """Nodes currently not marked dead."""
        with self._lock:
            return sum(
                1 for s in self._nodes.values() if s.state != NODE_DEAD
            )

    @staticmethod
    def _copy(status: NodeStatus) -> NodeStatus:
        return NodeStatus(**vars(status))


__all__ = [
    "ClusterMembership",
    "MembershipConfig",
    "NodeStatus",
    "NODE_ALIVE",
    "NODE_DEAD",
    "NODE_SUSPECT",
]
