"""Unit tests for Jaccard scoring and the length-based upper bound (Defn. 1, Eq. 1)."""

from __future__ import annotations

import pytest

from repro.text.similarity import (
    jaccard,
    jaccard_upper_bound,
    keyword_overlap,
    non_spatial_score,
    upper_bound_for_length,
)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == pytest.approx(1.0)

    def test_disjoint_sets(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        # |{a}| / |{a, b, c}|
        assert jaccard({"a", "b"}, {"a", "c"}) == pytest.approx(1.0 / 3.0)

    def test_single_common_term_table2_f1(self):
        # Table 2: f1 = {italian, gourmet} vs q = {italian} -> 0.5
        assert jaccard({"italian", "gourmet"}, {"italian"}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0

    def test_one_empty(self):
        assert jaccard({"a"}, set()) == 0.0
        assert jaccard(set(), {"a"}) == 0.0

    def test_symmetry(self):
        assert jaccard({"a", "b", "c"}, {"b", "d"}) == pytest.approx(
            jaccard({"b", "d"}, {"a", "b", "c"})
        )

    def test_range_is_unit_interval(self):
        score = jaccard({"a", "b", "c", "d"}, {"c", "d", "e"})
        assert 0.0 <= score <= 1.0

    def test_non_spatial_score_is_jaccard(self):
        assert non_spatial_score({"x", "y"}, {"y", "z"}) == jaccard({"x", "y"}, {"y", "z"})

    def test_accepts_frozensets_and_sets(self):
        assert jaccard(frozenset({"a"}), {"a"}) == 1.0


class TestUpperBound:
    def test_bound_is_one_for_shorter_features(self):
        # |f.W| < |q.W| -> bound 1 (Eq. 1, first case)
        assert upper_bound_for_length(feature_length=2, query_length=3) == 1.0

    def test_bound_for_equal_lengths(self):
        assert upper_bound_for_length(3, 3) == pytest.approx(1.0)

    def test_bound_for_longer_features(self):
        assert upper_bound_for_length(feature_length=10, query_length=2) == pytest.approx(0.2)

    def test_bound_monotonically_decreases_with_length(self):
        bounds = [upper_bound_for_length(n, 3) for n in range(1, 50)]
        assert all(earlier >= later for earlier, later in zip(bounds, bounds[1:]))

    def test_bound_dominates_actual_jaccard(self):
        feature = {"a", "b", "c", "d", "e"}
        query = {"a", "b"}
        assert jaccard_upper_bound(feature, query) >= jaccard(feature, query)

    def test_bound_is_tight_for_containment(self):
        feature = {"a", "b", "c", "d"}
        query = {"a", "b"}
        assert jaccard_upper_bound(feature, query) == pytest.approx(jaccard(feature, query))

    def test_rejects_negative_feature_length(self):
        with pytest.raises(ValueError):
            upper_bound_for_length(-1, 2)

    def test_rejects_zero_query_length(self):
        with pytest.raises(ValueError):
            upper_bound_for_length(3, 0)

    def test_zero_length_feature_gets_bound_one(self):
        # An empty feature keyword set is shorter than any query.
        assert upper_bound_for_length(0, 1) == 1.0


class TestKeywordOverlap:
    def test_overlap(self):
        assert keyword_overlap(["a", "b", "c"], {"b", "c", "d"}) == {"b", "c"}

    def test_no_overlap(self):
        assert keyword_overlap(["a"], {"b"}) == set()
