"""Unit and property tests for the STR-packed R-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.spatial.geometry import BoundingBox
from repro.spatial.rtree import RTree


def _brute_range(points, x, y, radius):
    return {
        item for px, py, item in points
        if (px - x) ** 2 + (py - y) ** 2 <= radius * radius
    }


@pytest.fixture(scope="module")
def random_points():
    rng = random.Random(41)
    return [(rng.uniform(0, 100), rng.uniform(0, 100), f"item-{i}") for i in range(2_000)]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree([])
        assert len(tree) == 0
        assert tree.height == 0
        assert tree.query_range(0, 0, 10) == []
        assert tree.query_box(BoundingBox(0, 0, 1, 1)) == []
        assert tree.all_items() == []

    def test_single_point(self):
        tree = RTree([(1.0, 2.0, "a")])
        assert len(tree) == 1
        assert tree.height == 1
        assert tree.query_range(1.0, 2.0, 0.0) == ["a"]

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            RTree([], max_entries=1)

    def test_height_grows_logarithmically(self, random_points):
        tree = RTree(random_points, max_entries=16)
        # 2000 points with fan-out 16: 125 leaves -> 8 internals -> 1 root.
        assert tree.height == 3

    def test_all_items_preserved(self, random_points):
        tree = RTree(random_points)
        assert sorted(tree.all_items()) == sorted(item for _, _, item in random_points)


class TestRangeQueries:
    def test_matches_brute_force(self, random_points):
        tree = RTree(random_points, max_entries=16)
        rng = random.Random(5)
        for _ in range(25):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            radius = rng.uniform(0, 20)
            assert set(tree.query_range(x, y, radius)) == _brute_range(random_points, x, y, radius)

    def test_radius_zero_finds_exact_point(self):
        tree = RTree([(3.0, 4.0, "a"), (5.0, 6.0, "b")])
        assert tree.query_range(3.0, 4.0, 0.0) == ["a"]

    def test_negative_radius_rejected(self):
        tree = RTree([(0.0, 0.0, "a")])
        with pytest.raises(ValueError):
            tree.query_range(0, 0, -1)

    def test_boundary_point_included(self):
        tree = RTree([(3.0, 0.0, "a")])
        assert tree.query_range(0.0, 0.0, 3.0) == ["a"]

    def test_node_access_counter_increases(self, random_points):
        tree = RTree(random_points, max_entries=16)
        tree.reset_stats()
        tree.query_range(50, 50, 5)
        first = tree.nodes_accessed
        tree.query_range(50, 50, 5)
        assert tree.nodes_accessed == 2 * first
        tree.reset_stats()
        assert tree.nodes_accessed == 0

    def test_small_range_visits_fewer_nodes_than_large(self, random_points):
        tree = RTree(random_points, max_entries=16)
        tree.reset_stats()
        tree.query_range(50, 50, 2)
        small = tree.nodes_accessed
        tree.reset_stats()
        tree.query_range(50, 50, 80)
        large = tree.nodes_accessed
        assert small < large


class TestBoxQueries:
    def test_matches_brute_force(self, random_points):
        tree = RTree(random_points, max_entries=16)
        box = BoundingBox(20, 30, 60, 70)
        expected = {item for x, y, item in random_points if box.contains(x, y)}
        assert set(tree.query_box(box)) == expected

    def test_box_outside_data_returns_empty(self, random_points):
        tree = RTree(random_points)
        assert tree.query_box(BoundingBox(500, 500, 600, 600)) == []


class TestRTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.integers(min_value=0, max_value=10_000),
            ),
            min_size=1,
            max_size=200,
        ),
        x=st.floats(min_value=0, max_value=50, allow_nan=False),
        y=st.floats(min_value=0, max_value=50, allow_nan=False),
        radius=st.floats(min_value=0, max_value=40, allow_nan=False),
        fanout=st.integers(min_value=2, max_value=16),
    )
    def test_range_query_equals_brute_force(self, points, x, y, radius, fanout):
        # Deduplicate payloads so the set comparison is meaningful.
        points = [(px, py, (i, payload)) for i, (px, py, payload) in enumerate(points)]
        tree = RTree(points, max_entries=fanout)
        assert set(tree.query_range(x, y, radius)) == _brute_range(points, x, y, radius)
