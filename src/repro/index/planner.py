"""Batch query planner.

``SPQEngine.execute_many`` accepts a heterogeneous list of queries -- plain
:class:`~repro.model.query.SpatialPreferenceQuery` objects or
:class:`BatchQuery` wrappers carrying per-query overrides -- and must return
results in input order.  The planner resolves every item against the batch
defaults and orders execution so that queries sharing a grid size (one index)
and score mode run back to back, maximising index and radius-cache reuse even
with a small index cache.

``algorithm`` may be any :data:`~repro.core.engine.ALGORITHM_CHOICES` value,
including ``"auto"``: auto items form their own planned group per
(grid size, score mode), so cost-based planning happens against the group's
shared index and batches stay amortised -- the adaptive planner
(:mod:`repro.planner`) then picks a concrete algorithm per query inside the
group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.exceptions import InvalidQueryError
from repro.model.query import SpatialPreferenceQuery


@dataclass(frozen=True)
class BatchQuery:
    """One batch item with optional per-query overrides.

    Unset fields fall back to the ``execute_many`` call's defaults.
    """

    query: SpatialPreferenceQuery
    algorithm: Optional[str] = None
    grid_size: Optional[int] = None
    score_mode: Optional[str] = None


@dataclass(frozen=True)
class PlannedQuery:
    """A fully resolved batch item, remembering its input position."""

    position: int
    query: SpatialPreferenceQuery
    algorithm: str
    grid_size: int
    score_mode: str

    @property
    def group_key(self) -> tuple:
        """Execution grouping key: ``(grid_size, score_mode, algorithm)``."""
        return (self.grid_size, self.score_mode, self.algorithm)


BatchItem = Union[SpatialPreferenceQuery, BatchQuery]


def plan_batch(
    items: Sequence[BatchItem],
    default_algorithm: str,
    default_grid_size: int,
    default_score_mode: str,
) -> List[PlannedQuery]:
    """Resolve and order a batch for execution.

    The returned plan is sorted by ``(grid_size, score_mode, algorithm)``
    with a stable tie-break on input position; callers map results back to
    input order through :attr:`PlannedQuery.position`.
    """
    planned: List[PlannedQuery] = []
    for position, item in enumerate(items):
        if isinstance(item, BatchQuery):
            query = item.query
            # "is not None" rather than falsy-or: an explicit (invalid)
            # override like grid_size=0 must be rejected, not silently
            # replaced by the default.
            algorithm = item.algorithm if item.algorithm is not None else default_algorithm
            grid_size = item.grid_size if item.grid_size is not None else default_grid_size
            score_mode = item.score_mode if item.score_mode is not None else default_score_mode
        elif isinstance(item, SpatialPreferenceQuery):
            query = item
            algorithm = default_algorithm
            grid_size = default_grid_size
            score_mode = default_score_mode
        else:
            raise InvalidQueryError(
                f"batch item {position} must be a SpatialPreferenceQuery or "
                f"BatchQuery, got {type(item).__name__}"
            )
        if not isinstance(grid_size, int) or isinstance(grid_size, bool) or grid_size < 1:
            raise InvalidQueryError(
                f"batch item {position}: grid_size must be a positive integer, "
                f"got {grid_size!r}"
            )
        planned.append(
            PlannedQuery(
                position=position,
                query=query,
                algorithm=algorithm,
                grid_size=grid_size,
                score_mode=score_mode,
            )
        )
    planned.sort(key=lambda entry: (entry.group_key, entry.position))
    return planned
