"""Unit tests for the UN/CL synthetic dataset generators."""

from __future__ import annotations


import pytest

from repro.datagen.synthetic import (
    SyntheticDatasetConfig,
    generate_clustered,
    generate_uniform,
)
from repro.spatial.geometry import BoundingBox


class TestConfigValidation:
    def test_rejects_too_few_objects(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(num_objects=1)

    def test_rejects_bad_keyword_range(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(min_keywords=10, max_keywords=5)

    def test_rejects_zero_vocabulary(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(vocabulary_size=0)

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(num_clusters=0)

    def test_vocabulary_has_requested_size(self):
        config = SyntheticDatasetConfig(vocabulary_size=50)
        assert len(config.vocabulary()) == 50
        assert len(set(config.vocabulary())) == 50


class TestUniformGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_uniform(SyntheticDatasetConfig(num_objects=2_000, seed=5))

    def test_half_data_half_features(self, dataset):
        data, features = dataset
        assert len(data) == 1_000
        assert len(features) == 1_000

    def test_all_objects_inside_extent(self, dataset):
        data, features = dataset
        extent = SyntheticDatasetConfig().extent
        for obj in list(data) + list(features):
            assert extent.contains(obj.x, obj.y)

    def test_keyword_counts_within_configured_range(self, dataset):
        _, features = dataset
        for feature in features:
            assert 10 <= feature.keyword_count <= 100

    def test_keywords_come_from_vocabulary(self, dataset):
        _, features = dataset
        vocabulary = set(SyntheticDatasetConfig().vocabulary())
        for feature in features[:100]:
            assert feature.keywords <= vocabulary

    def test_object_ids_are_unique(self, dataset):
        data, features = dataset
        ids = [o.oid for o in data] + [f.oid for f in features]
        assert len(set(ids)) == len(ids)

    def test_generation_is_deterministic_under_seed(self):
        config = SyntheticDatasetConfig(num_objects=200, seed=9)
        assert generate_uniform(config) == generate_uniform(config)

    def test_different_seeds_differ(self):
        first = generate_uniform(SyntheticDatasetConfig(num_objects=200, seed=1))
        second = generate_uniform(SyntheticDatasetConfig(num_objects=200, seed=2))
        assert first != second

    def test_positions_cover_the_space(self, dataset):
        """Uniform data should spread across all four quadrants of the extent."""
        data, _ = dataset
        quadrants = {(obj.x > 50.0, obj.y > 50.0) for obj in data}
        assert len(quadrants) == 4


class TestClusteredGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_clustered(SyntheticDatasetConfig(num_objects=2_000, seed=5))

    def test_half_data_half_features(self, dataset):
        data, features = dataset
        assert len(data) == 1_000
        assert len(features) == 1_000

    def test_all_objects_inside_extent(self, dataset):
        data, features = dataset
        extent = SyntheticDatasetConfig().extent
        for obj in list(data) + list(features):
            assert extent.contains(obj.x, obj.y)

    def test_clustered_is_more_concentrated_than_uniform(self):
        """Clustered positions have a much smaller average nearest-cluster spread
        than uniform ones; compare dispersion via coordinate stdev within the
        busiest 10x10 bucket."""
        config = SyntheticDatasetConfig(num_objects=2_000, seed=5)
        uniform_data, _ = generate_uniform(config)
        clustered_data, _ = generate_clustered(config)

        def occupancy(points):
            buckets = {}
            for obj in points:
                key = (int(obj.x // 10), int(obj.y // 10))
                buckets[key] = buckets.get(key, 0) + 1
            return max(buckets.values()) / len(points)

        assert occupancy(clustered_data) > 2 * occupancy(uniform_data)

    def test_custom_extent_respected(self):
        config = SyntheticDatasetConfig(
            num_objects=500, extent=BoundingBox(-10, -10, 10, 10), seed=3
        )
        data, features = generate_clustered(config)
        for obj in list(data) + list(features):
            assert config.extent.contains(obj.x, obj.y)

    def test_deterministic_under_seed(self):
        config = SyntheticDatasetConfig(num_objects=300, seed=21)
        assert generate_clustered(config) == generate_clustered(config)
