"""Baseline comparison and design-choice ablations (DESIGN.md experiments).

Three comparisons that are not figures in the paper but quantify the design
choices DESIGN.md calls out:

* **Centralized baselines versus the MapReduce algorithms** -- the paper
  states centralized processing is infeasible at its data scale; here the
  exhaustive oracle, the grid-accelerated oracle and the indexed baseline
  (inverted index + R-tree) are measured against the distributed eSPQsco path
  on the same workload.
* **Map-side keyword pruning ablation** -- Algorithm 1's rule of dropping
  feature objects with no query keyword before the shuffle, on versus off.
* **R-tree fan-out ablation** -- the indexed baseline's sensitivity to the
  index page size.
"""

from __future__ import annotations

import pytest

from repro.core.centralized import CentralizedSPQ
from repro.core.indexed_baseline import IndexedCentralizedSPQ
from repro.core.jobs import ESPQScoJob, PSPQJob
from repro.mapreduce.runtime import LocalJobRunner
from benchmarks.conftest import execute


@pytest.fixture(scope="module")
def workload(uniform_spec):
    query = uniform_spec.build_query()
    return uniform_spec, query


class TestCentralizedBaselines:
    def test_centralized_exhaustive(self, benchmark, workload):
        spec, query = workload
        oracle = CentralizedSPQ(list(spec.data_objects), list(spec.feature_objects))
        benchmark(oracle.evaluate_exhaustive, query)

    def test_centralized_grid_accelerated(self, benchmark, workload):
        spec, query = workload
        oracle = CentralizedSPQ(list(spec.data_objects), list(spec.feature_objects))
        benchmark(oracle.evaluate, query)

    def test_centralized_indexed(self, benchmark, workload):
        spec, query = workload
        baseline = IndexedCentralizedSPQ(list(spec.data_objects), list(spec.feature_objects))
        benchmark(baseline.evaluate, query)

    def test_distributed_espqsco(self, benchmark, uniform_spec):
        benchmark(execute, uniform_spec, "espq-sco")


class TestPruningAblation:
    @pytest.mark.parametrize("prune", [True, False], ids=["with-pruning", "no-pruning"])
    def test_pspq_with_and_without_keyword_pruning(self, benchmark, uniform_spec, prune):
        query = uniform_spec.build_query()
        engine = uniform_spec.build_engine()
        grid = engine.build_grid(uniform_spec.grid_size)
        records = list(uniform_spec.data_objects) + list(uniform_spec.feature_objects)

        def run_job():
            runner = LocalJobRunner(num_reducers=grid.num_cells)
            return runner.run(PSPQJob(query, grid, prune_irrelevant=prune), records)

        result = benchmark(run_job)
        benchmark.extra_info["shuffled_records"] = result.total_shuffle_records()
        if prune:
            assert result.counters.get("spq", "features_pruned") > 0
        else:
            assert result.counters.get("spq", "features_pruned") == 0

    def test_pruning_reduces_shuffle_volume(self, uniform_spec, benchmark):
        query = uniform_spec.build_query()
        engine = uniform_spec.build_engine()
        grid = engine.build_grid(uniform_spec.grid_size)
        records = list(uniform_spec.data_objects) + list(uniform_spec.feature_objects)

        def shuffle_records(prune: bool) -> int:
            runner = LocalJobRunner(num_reducers=grid.num_cells)
            job = ESPQScoJob(query, grid, prune_irrelevant=prune)
            return runner.run(job, records).total_shuffle_records()

        def both():
            return shuffle_records(True), shuffle_records(False)

        pruned, unpruned = benchmark(both)
        assert pruned < unpruned


class TestRTreeFanoutAblation:
    @pytest.mark.parametrize("fanout", [8, 32, 128])
    def test_indexed_baseline_fanout(self, benchmark, workload, fanout):
        spec, query = workload
        baseline = IndexedCentralizedSPQ(
            list(spec.data_objects), list(spec.feature_objects), rtree_fanout=fanout
        )
        result = benchmark(baseline.evaluate, query)
        benchmark.extra_info["rtree_nodes_accessed"] = result.stats["rtree_nodes_accessed"]
