"""Unit tests for keyword tokenization."""

from __future__ import annotations

from repro.text.tokenizer import DEFAULT_STOPWORDS, normalize_keyword, tokenize


class TestNormalizeKeyword:
    def test_lowercases(self):
        assert normalize_keyword("Italian") == "italian"

    def test_strips_punctuation(self):
        assert normalize_keyword("(pizza!)") == "pizza"

    def test_strips_whitespace(self):
        assert normalize_keyword("  sushi  ") == "sushi"


class TestTokenize:
    def test_basic_sentence(self):
        keywords = tokenize("Great Italian restaurant near the station")
        assert "italian" in keywords
        assert "restaurant" in keywords

    def test_stopwords_removed(self):
        keywords = tokenize("the best of the best")
        assert "the" not in keywords
        assert "of" not in keywords
        assert "best" in keywords

    def test_custom_stopwords(self):
        keywords = tokenize("fresh sushi bar", stopwords={"sushi"})
        assert "sushi" not in keywords
        assert "fresh" in keywords

    def test_min_length_filter(self):
        keywords = tokenize("go to a pub", min_length=3)
        assert "go" not in keywords
        assert "pub" in keywords

    def test_hashtags_and_mentions_preserved(self):
        keywords = tokenize("lunch at #rome with @anna")
        assert "#rome" in keywords
        assert "@anna" in keywords

    def test_returns_frozenset(self):
        assert isinstance(tokenize("hello world"), frozenset)

    def test_empty_text(self):
        assert tokenize("") == frozenset()

    def test_duplicates_collapse(self):
        assert tokenize("pizza pizza pizza") == frozenset({"pizza"})

    def test_default_stopwords_are_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOPWORDS)
