"""Scatter-gather query router over per-shard query services.

:class:`ShardRouter` is the sharded counterpart of
:class:`~repro.server.service.QueryService` and serves the same request
objects through the same front-end (``repro serve --shards N``):

* at build time the dataset is split by :func:`~repro.sharding.partition.
  partition_datasets` and one :class:`QueryService` is started per shard,
  each over the shard's slice but gridding over the *full* dataset extent,
  so every shard engine's query grid is cell-for-cell the unsharded
  engine's grid;
* a request is parsed and resolved once at the router, answered from the
  router's result cache when possible, and otherwise *scattered* -- in
  parallel -- to every shard that owns data (the routing rule; feature
  reach was already resolved at partition time by the ``MINDIST <=
  max_radius`` replication rule);
* the per-shard top-k partials are *gathered* through
  :func:`~repro.model.result.merge_top_k` -- the same merge, with the same
  ``(-score, oid)`` tie order, the engine uses for per-cell lists -- which
  is associative, so the merged result equals a single unsharded engine's
  (see :meth:`~repro.sharding.partition.ShardingPlan.grid_aligned` for the
  exact tie contract);
* hot swaps (``POST /datasets``) quiesce the router (in-flight scatter
  requests drain, new ones queue at the gate), repartition, swap every
  shard atomically and invalidate the router's result cache by bumping the
  router dataset version;
* **rebalancing** (``POST /rebalance``, or the background controller when
  ``--rebalance-threshold`` is set) recomputes a skew-aware
  :class:`~repro.sharding.layout.ShardLayout` from the live data
  histogram, materializes the current base+delta state in bulk-swap order
  and applies it through the same quiesce path -- the dataset content is
  unchanged, so answers stay bit-for-bit identical across the layout
  change, and freshly populated shards re-seed their planner calibrators
  from the shared snapshot (the PR-7 ``calibration_seed_path`` rule)
  instead of starting cold.

``benchmarks/bench_sharding.py --check`` gates result identity, 4-shard
throughput and loss-free hot swaps under load;
``benchmarks/bench_rebalance.py --check`` gates the skew layout's p99 win
on clustered data plus loss-free rebalancing under load.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.engine import ALGORITHM_CHOICES, EngineConfig
from repro.exceptions import InvalidQueryError, OverloadError
from repro.index.delta import DatasetDelta, materialize
from repro.model.objects import DataObject, FeatureObject
from repro.model.result import QueryResult, ScoredObject, merge_top_k
from repro.planner.persistence import scoped_calibration_path
from repro.server.admission import AdmissionController
from repro.server.cache import ResultCache
from repro.server.metrics import LatencyHistogram
from repro.server.protocol import ParsedRequest, parse_query_spec, result_payload
from repro.server.service import (
    QueryService,
    ServiceConfig,
    resolve_request_defaults,
)
from repro.sharding.layout import LAYOUT_CHOICES
from repro.sharding.partition import ShardingPlan, partition_datasets
from repro.spatial.geometry import BoundingBox


@dataclass
class ShardingConfig:
    """Router-level knobs of one :class:`ShardRouter`.

    Attributes:
        shards: Number of shards (>= 1).
        max_radius: Largest query radius the shards answer exactly; the
            feature replication radius of the partitioner.  ``None``
            replicates every feature to every shard and accepts any radius.
        scatter_threads: Size of the scatter thread pool (one task per
            shard per in-flight request).  ``None`` picks
            ``min(64, shards * 8)``.
        layout: Initial shard layout kind: ``"uniform"`` (the historical
            most-square extent split) or ``"skew"`` (count-balancing kd
            split over the data histogram; see
            :mod:`repro.sharding.layout`).
        layout_resolution: Skew layout-grid cells per axis.  ``None``
            follows the served default query grid size, which keeps the
            default grid layout-aligned (the score-tie contract).
        rebalance_threshold: Per-shard p99 imbalance ratio (slowest shard
            p99 over the median shard p99, measured over the controller's
            observation window) above which the background controller
            triggers a skew rebalance.  ``None`` disables the controller;
            :meth:`ShardRouter.rebalance` stays available either way.
        rebalance_interval_seconds: Controller sampling period.
        rebalance_min_requests: Minimum scatter requests observed across
            the window before an imbalance verdict is trusted (a handful
            of requests make a meaningless p99).
    """

    shards: int = 2
    max_radius: Optional[float] = None
    scatter_threads: Optional[int] = None
    layout: str = "uniform"
    layout_resolution: Optional[int] = None
    rebalance_threshold: Optional[float] = None
    rebalance_interval_seconds: float = 2.0
    rebalance_min_requests: int = 50


@dataclass
class _RouterCounters:
    """Mutable request accounting (guarded by the router lock)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    swaps: int = 0
    write_batches: int = 0
    rebalances: int = 0


class ShardRouter:
    """Scatter-gather front-end over one :class:`QueryService` per shard.

    Duck-types the :class:`QueryService` serving surface (``submit``,
    ``submit_many``, ``stats``, ``uptime_seconds``, ``swap_datasets``,
    context manager), so :func:`repro.server.http.make_server` serves a
    router and a plain service interchangeably.
    """

    def __init__(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
        engine_config: Optional[EngineConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        sharding: Optional[ShardingConfig] = None,
    ) -> None:
        """Partition the dataset and build (but do not start) shard services.

        Per-shard :class:`ServiceConfig` adjustments: the shard services run
        with their result caches disabled (responses are cached once, at the
        router, keyed by the router dataset version) and, when a
        ``calibration_path`` is configured, each shard persists its own
        calibration under ``<path>.shard<i>`` (shards see different data, so
        their calibration states legitimately differ).  A shard whose scoped
        snapshot does not exist yet is *seeded* from the global snapshot at
        the base path (or an explicit ``calibration_seed_path``), so a
        re-sharded or freshly added shard plans from fleet-wide estimates
        instead of paying the cold-start warm-up again.

        Raises:
            ValueError: for a non-positive shard count or engine pool.
            InvalidQueryError: for a negative ``max_radius``.
            JobConfigurationError: for invalid engine configuration.
        """
        self.sharding = sharding or ShardingConfig()
        if self.sharding.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.sharding.shards}")
        if self.sharding.layout not in LAYOUT_CHOICES:
            raise ValueError(
                f"unknown layout {self.sharding.layout!r}; "
                f"expected one of {LAYOUT_CHOICES}"
            )
        self._engine_config = engine_config or EngineConfig()
        self._service_config = service_config or ServiceConfig()
        #: Skew layouts snap to this grid; following the served default
        #: query grid keeps the default grid layout-aligned.
        self._layout_resolution = (
            self.sharding.layout_resolution
            or self._service_config.default_grid_size
            or self._engine_config.grid_size
        )
        self._layout_kind = self.sharding.layout
        self._plan = partition_datasets(
            data_objects,
            feature_objects,
            self.sharding.shards,
            max_radius=self.sharding.max_radius,
            layout=self._layout_kind,
            layout_resolution=self._layout_resolution,
        )
        #: The base snapshot behind the shards, in storage order; together
        #: with the delta mirror this is what a rebalance materializes to
        #: rebuild the full current dataset in bulk-swap order.
        self._base_data = list(data_objects)
        self._base_features = list(feature_objects)
        # One service per *configured* shard, even when a degenerate
        # layout produced fewer: a later swap or rebalance may grow the
        # plan back, and extra services idle over empty slices until then
        # (the scatter path only targets plan shards).
        self._services: List[QueryService] = [
            QueryService(
                *self._shard_slice(self._plan, shard_id),
                engine_config=self._engine_config,
                config=self._shard_service_config(shard_id),
                extent=self._plan.extent,
            )
            for shard_id in range(self.sharding.shards)
        ]
        self._defaults = resolve_request_defaults(
            self._plan.extent, self._engine_config.grid_size, self._service_config
        )
        self._cache = ResultCache(self._service_config.result_cache_capacity)
        #: Admission happens once, at the router: the per-shard services
        #: run with admission disabled (see ``_shard_service_config``), so
        #: a request admitted here can never be half-shed by one shard of
        #: its scatter.  Same 429 contract as an unsharded service.
        self._admission = AdmissionController(
            queue_depth=self._service_config.admission_queue_depth,
            default_deadline_ms=self._service_config.default_deadline_ms,
        )
        self._latency = LatencyHistogram()
        self._counters = _RouterCounters()
        self._dataset_version = 0
        self._num_features = len(feature_objects)
        #: Router-level mirror of the incremental write stream.  It is the
        #: single atomic validator of a write batch (duplicate oids,
        #: extent) *before* anything is pushed to a shard -- a batch that
        #: would fail on shard 2 after succeeding on shard 1 must be
        #: rejected whole, up front -- and its snapshot version is the
        #: write component of the router's result-cache keys.
        self._delta = DatasetDelta()
        self._base_data_oids = {obj.oid for obj in data_objects}
        self._base_feature_oids = {obj.oid for obj in feature_objects}
        self._lock = threading.Lock()
        #: Serializes hot swaps against each other.
        self._swap_lock = threading.Lock()
        #: Quiesce gate: while ``_paused`` no new request scatters;
        #: ``_inflight`` counts requests between gate entry and completion.
        self._gate = threading.Condition()
        self._paused = False
        self._inflight = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._closed = False
        self._started_monotonic: Optional[float] = None
        #: Background imbalance watcher (started only with a threshold).
        self._rebalance_stop = threading.Event()
        self._rebalance_thread: Optional[threading.Thread] = None
        self._last_rebalance_unix: Optional[float] = None
        self._last_observed_imbalance: Optional[float] = None

    @staticmethod
    def _shard_slice(
        plan: ShardingPlan, shard_id: int
    ) -> Tuple[List[DataObject], List[FeatureObject]]:
        """``shard_id``'s slice of ``plan`` (empty past the plan's end)."""
        if shard_id < len(plan.shards):
            shard = plan.shards[shard_id]
            return shard.data_objects, shard.feature_objects
        return [], []

    def _shard_service_config(self, shard_id: int) -> ServiceConfig:
        # Shards disable their result caches (the router caches merged
        # responses) and their admission control (the router admission-
        # gates the front; a shard shedding one leg of a scatter would
        # tear the merged answer).
        config = dataclasses.replace(
            self._service_config,
            result_cache_capacity=0,
            admission_queue_depth=0,
            default_deadline_ms=None,
        )
        if config.calibration_path:
            config = dataclasses.replace(
                config,
                calibration_path=scoped_calibration_path(
                    config.calibration_path, f"shard{shard_id}"
                ),
                calibration_seed_path=(
                    config.calibration_seed_path or config.calibration_path
                ),
            )
        return config

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "ShardRouter":
        """Start every shard service and the scatter pool (idempotent)."""
        with self._lock:
            if self._started or self._closed:
                return self
            self._started = True
            self._started_monotonic = time.monotonic()
        workers = self.sharding.scatter_threads or min(
            64, self.sharding.shards * 8
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-scatter"
        )
        for service in self._services:
            service.start()
        if self.sharding.rebalance_threshold is not None:
            self._rebalance_thread = threading.Thread(
                target=self._run_rebalance_controller,
                name="repro-rebalance",
                daemon=True,
            )
            self._rebalance_thread.start()
        return self

    def shutdown(self) -> None:
        """Drain in-flight requests, then tear everything down (idempotent).

        A request that passed the submission check races shutdown; tearing
        the scatter pool down under it would fail an accepted request (the
        close-while-serving race class).  Instead the gate's in-flight count
        is drained first -- accepted requests complete, requests that reach
        the gate after the closed flag is set are rejected cleanly -- and
        only then are the pool and the shard services stopped (serialized
        against a concurrent :meth:`swap_datasets` via the swap lock).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._rebalance_stop.set()
        if self._rebalance_thread is not None:
            self._rebalance_thread.join()
        with self._gate:
            while self._inflight:
                self._gate.wait()
        with self._swap_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            for service in self._services:
                service.shutdown()

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has been called."""
        return self._closed

    def uptime_seconds(self) -> float:
        """Seconds since :meth:`start` (0.0 before it); lock-free."""
        started = self._started_monotonic
        return time.monotonic() - started if started is not None else 0.0

    # ------------------------------------------------------------------ #
    # serving

    def submit(self, spec: Mapping[str, object]) -> Dict[str, object]:
        """Serve one request object; returns its response payload.

        Identical request/response contract to :meth:`QueryService.submit`;
        see :mod:`repro.server.protocol`.  Additionally rejects queries
        whose radius exceeds the configured ``max_radius`` (the shards'
        feature replication cannot answer them exactly).

        Raises:
            InvalidQueryError: for an invalid request or an over-radius one.
            RuntimeError: when the router is not started or already shut
                down.
        """
        parsed = self._parse(spec)
        return self._serve(parsed)

    def submit_many(
        self, specs: Sequence[Mapping[str, object]]
    ) -> List[Dict[str, object]]:
        """Serve a batch of request objects; responses in input order.

        All requests are validated up front (the whole batch is rejected if
        any is invalid, mirroring ``QueryService.submit_many``), then served
        concurrently on a batch-local thread pool so their scatter-gather
        round-trips overlap -- the pool is distinct from the shard scatter
        pool (batch tasks block on scatter tasks, never the reverse, so the
        two levels cannot deadlock each other).
        """
        parsed_list = [self._parse(spec) for spec in specs]
        if len(parsed_list) <= 1:
            return [self._serve(parsed) for parsed in parsed_list]
        with ThreadPoolExecutor(
            max_workers=min(len(parsed_list), 8),
            thread_name_prefix="repro-shard-batch",
        ) as pool:
            return list(pool.map(self._serve, parsed_list))

    def _parse(self, spec: Mapping[str, object]) -> ParsedRequest:
        parsed = parse_query_spec(spec, self._defaults, ALGORITHM_CHOICES)
        self._services[0].engines[0].validate_combination(
            parsed.item.algorithm, parsed.item.score_mode
        )
        max_radius = self.sharding.max_radius
        if max_radius is not None and parsed.item.query.radius > max_radius:
            raise InvalidQueryError(
                f"query radius {parsed.item.query.radius} exceeds the shard "
                f"replication radius (max_radius={max_radius}); features "
                "beyond it were not replicated across shard boundaries, so "
                "the sharded service cannot answer this query exactly"
            )
        return parsed

    def _serve(self, parsed: ParsedRequest) -> Dict[str, object]:
        started = time.monotonic()
        with self._lock:
            if not self._started:
                raise RuntimeError("the query service is not started")
            if self._closed:
                raise RuntimeError("the query service is shut down")
            self._counters.submitted += 1
        admission = self._admission
        deadline = admission.resolve_deadline(parsed.deadline_ms)
        admission.on_arrival(deadline)
        admission.acquire()
        try:
            response = self._serve_admitted(parsed, deadline)
        except OverloadError:
            # Only the gate's queue-expiry check raises this past
            # admission: the request was admitted, then its deadline
            # passed while waiting at the (possibly swap-paused) gate.
            admission.release("expired")
            with self._lock:
                self._counters.failed += 1
            raise
        except BaseException:
            admission.release("failed")
            with self._lock:
                self._counters.failed += 1
            raise
        latency = time.monotonic() - started
        admission.release("completed", latency)
        self._latency.record(latency)
        with self._lock:
            self._counters.completed += 1
        return response

    def _serve_admitted(
        self, parsed: ParsedRequest, deadline: Optional[float]
    ) -> Dict[str, object]:
        """Gate entry + scatter-gather for one admitted request."""
        with self._gate:
            while self._paused:
                self._gate.wait()
            # The authoritative closed-check: a request may pass the early
            # check above, then lose the race with shutdown -- rejecting it
            # here (before the in-flight count) keeps shutdown's drain exact.
            if self._closed:
                raise RuntimeError("the query service is shut down")
            self._inflight += 1
        try:
            # A swap may have held the gate long enough to blow the
            # request's budget; shedding it here (explicit 429) instead of
            # serving a too-late answer is what "quiesce under overload
            # loses nothing" means -- every request still gets a definite
            # outcome.
            if self._admission.expired_in_queue(deadline):
                raise self._admission.queue_expiry_error()
            return self._serve_gated(parsed)
        finally:
            with self._gate:
                self._inflight -= 1
                self._gate.notify_all()

    def _serve_gated(self, parsed: ParsedRequest) -> Dict[str, object]:
        """Cache probe + scatter-gather; runs inside the quiesce gate."""
        # Composite version: incremental writes bump only the delta
        # component (the shard engines' base snapshots stay valid), making
        # every cached merged result unreachable the moment a write lands.
        key = parsed.canonical_key(
            (self._dataset_version, self._delta.snapshot().version)
        )
        if self._cache.enabled:
            payload = self._cache.get(key)
            if payload is not None:
                payload["cached"] = True
                if not parsed.include_stats:
                    payload.pop("stats", None)
                with self._lock:
                    self._counters.cache_hits += 1
                return payload

        shard_responses = self._scatter(parsed)
        full = self._gather(parsed, shard_responses)
        self._cache.put(key, full)
        response = dict(full)
        if not parsed.include_stats:
            response.pop("stats", None)
        return response

    def _scatter(
        self, parsed: ParsedRequest
    ) -> List[Tuple[int, Dict[str, object]]]:
        """Fan the resolved request out to every data-bearing shard.

        The scattered spec is fully resolved (every field explicit), so the
        shard services' own defaults can never reinterpret it, and it always
        asks for stats: the router caches the stats-bearing merged payload
        (the same trick ``QueryService`` uses) and strips on answer.
        """
        item = parsed.item
        spec: Dict[str, object] = {
            "keywords": sorted(item.query.keywords),
            "k": item.query.k,
            "radius": item.query.radius,
            "algorithm": item.algorithm,
            "grid_size": item.grid_size,
            "score_mode": item.score_mode,
            "stats": True,
        }
        targets = [
            (shard.shard_id, self._services[shard.shard_id])
            for shard in self._plan.shards
            if not shard.is_empty
        ]
        if not targets:
            return []
        if len(targets) == 1:
            shard_id, service = targets[0]
            return [(shard_id, service.submit(spec))]
        assert self._pool is not None  # started before any request is gated
        futures = [
            (shard_id, self._pool.submit(service.submit, spec))
            for shard_id, service in targets
        ]
        return [(shard_id, future.result()) for shard_id, future in futures]

    def _gather(
        self,
        parsed: ParsedRequest,
        shard_responses: List[Tuple[int, Dict[str, object]]],
    ) -> Dict[str, object]:
        """Merge per-shard partials into the stats-bearing response payload."""
        partials: List[List[ScoredObject]] = [
            [
                ScoredObject(
                    DataObject(oid=entry["oid"], x=entry["x"], y=entry["y"]),
                    entry["score"],
                )
                for entry in response["results"]
            ]
            for _, response in shard_responses
        ]
        entries = merge_top_k(partials, parsed.item.query.k)
        stats = self._aggregate_stats(parsed, shard_responses)
        stats_parsed = ParsedRequest(item=parsed.item, include_stats=True)
        return result_payload(stats_parsed, QueryResult(entries, stats=stats))

    def _aggregate_stats(
        self,
        parsed: ParsedRequest,
        shard_responses: List[Tuple[int, Dict[str, object]]],
    ) -> Dict[str, object]:
        """Router-level stats tree: sums of shard work, makespan of shard time.

        ``simulated_seconds`` is the *maximum* over shards -- they execute
        in parallel, so the simulated sharded job time is the slowest
        shard's -- while the work counters are sums.  Per-shard planner
        decisions are surfaced under ``sharding.planned_algorithms``; the
        top-level ``planned_algorithm`` is set only when every queried
        shard chose the same one.
        """
        stats: Dict[str, object] = {
            "algorithm": parsed.item.algorithm,
            "grid_size": parsed.item.grid_size,
        }
        summed = (
            "shuffled_records",
            "features_pruned",
            "features_examined",
            "score_computations",
        )
        totals: Dict[str, float] = dict.fromkeys(summed, 0)
        makespan = 0.0
        planned: Dict[str, str] = {}
        for shard_id, response in shard_responses:
            shard_stats = response.get("stats", {})
            for name in summed:
                if name in shard_stats:
                    totals[name] += shard_stats[name]
            makespan = max(makespan, shard_stats.get("simulated_seconds", 0.0))
            if "planned_algorithm" in response:
                planned[str(shard_id)] = response["planned_algorithm"]
            if "backend" in shard_stats and "backend" not in stats:
                stats["backend"] = shard_stats["backend"]
                stats["workers"] = shard_stats.get("workers")
        stats.update(totals)
        stats["simulated_seconds"] = makespan
        stats["sharding"] = {
            "shards_queried": len(shard_responses),
            "dataset_version": self._dataset_version,
            "planned_algorithms": planned or None,
        }
        if planned and len(set(planned.values())) == 1:
            stats["planned_algorithm"] = next(iter(planned.values()))
        return stats

    # ------------------------------------------------------------------ #
    # datasets

    def swap_datasets(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
    ) -> Dict[str, object]:
        """Hot-swap the dataset across every shard; returns new snapshot info.

        The two-level quiesce protocol:

        1. the router gate pauses: in-flight scatter-gather requests drain
           (each sees one consistent shard generation), new requests queue
           at the gate instead of failing;
        2. the new dataset is repartitioned over its new extent;
        3. every shard service swaps (their own quiesce is trivially idle:
           all router traffic has drained, and shard queues are empty);
        4. the router dataset version is bumped -- every cached result
           becomes unreachable -- defaults re-derive from the new extent,
           and the gate reopens.

        No request is lost: requests queued at the gate are served from the
        new snapshot once the gate reopens.
        """
        with self._swap_lock:
            self._install_plan_locked(
                data_objects, feature_objects, self._layout_kind
            )
            with self._lock:
                self._counters.swaps += 1
        return self.dataset_info()

    def _install_plan_locked(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
        layout: str,
        extent: Optional[BoundingBox] = None,
    ) -> ShardingPlan:
        """Repartition + apply a dataset under the quiesce gate.

        The shared tail of :meth:`swap_datasets` and :meth:`rebalance`;
        the caller must hold ``_swap_lock``.  Pauses the gate, drains
        in-flight scatter-gathers, swaps every shard service (padding
        services past a shorter plan with empty slices at the new extent),
        bumps the router dataset version -- every cached result becomes
        unreachable -- resets the write mirror to the new base, re-derives
        the defaults and reopens the gate.
        """
        with self._gate:
            self._paused = True
            while self._inflight:
                self._gate.wait()
        try:
            plan = partition_datasets(
                data_objects,
                feature_objects,
                self.sharding.shards,
                max_radius=self.sharding.max_radius,
                extent=extent,
                layout=layout,
                layout_resolution=self._layout_resolution,
            )
            for shard_id, service in enumerate(self._services):
                shard_data, shard_features = self._shard_slice(plan, shard_id)
                service.swap_datasets(
                    shard_data, shard_features, extent=plan.extent
                )
            self._plan = plan
            self._layout_kind = plan.stats.kind
            self._base_data = list(data_objects)
            self._base_features = list(feature_objects)
            self._num_features = len(feature_objects)
            self._dataset_version += 1
            # The write mirror was relative to the old base: new base
            # oid sets, empty delta (the reset still bumps its version).
            self._base_data_oids = {obj.oid for obj in data_objects}
            self._base_feature_oids = {obj.oid for obj in feature_objects}
            self._delta.reset()
            self._cache.invalidate()
            self._defaults = resolve_request_defaults(
                plan.extent,
                self._engine_config.grid_size,
                self._service_config,
            )
        finally:
            with self._gate:
                self._paused = False
                self._gate.notify_all()
        return plan

    # ------------------------------------------------------------------ #
    # rebalancing (see docs/sharding.md)

    def rebalance(self, layout: str = "skew") -> Dict[str, object]:
        """Re-derive the shard layout from the live data distribution.

        The current dataset -- base snapshot plus delta overlay -- is
        materialized in bulk-swap order (the identity contract's storage
        order), a fresh ``layout`` (skew by default) is derived from its
        per-cell histogram, and the result is applied through the same
        quiesce path as a hot swap, with the extent pinned so the query
        grids never drift.  The dataset *content* is unchanged, so every
        answer after the rebalance is bit-for-bit the answer before it;
        only the per-shard work distribution moves.  Shards whose planner
        calibrator is still cold afterwards are re-seeded from the
        configured calibration seed snapshot.

        Returns:
            A summary of the new layout: kind, shard count, per-shard data
            share, imbalance ratio and which shards were re-seeded.

        Raises:
            ValueError: for an unknown layout kind.
            RuntimeError: when the router is not started or shut down.
        """
        if layout not in LAYOUT_CHOICES:
            raise ValueError(
                f"unknown layout {layout!r}; expected one of {LAYOUT_CHOICES}"
            )
        with self._lock:
            if not self._started:
                raise RuntimeError("the query service is not started")
            if self._closed:
                raise RuntimeError("the query service is shut down")
        with self._swap_lock:
            data_objects, feature_objects = materialize(
                self._base_data, self._base_features, self._delta.snapshot()
            )
            plan = self._install_plan_locked(
                data_objects, feature_objects, layout, extent=self._plan.extent
            )
            seeded = [
                shard_id
                for shard_id, service in enumerate(self._services)
                if service.seed_calibration_if_cold()
            ]
            with self._lock:
                self._counters.rebalances += 1
            self._last_rebalance_unix = time.time()
        counts = [len(shard.data_objects) for shard in plan.shards]
        return {
            "layout": plan.stats.kind,
            "shards": plan.stats.num_shards,
            "empty_shards": plan.stats.empty_shards,
            "data_share": self._data_share(counts),
            "imbalance": self._imbalance(counts),
            "seeded_shards": seeded,
            "dataset": self.dataset_info(),
        }

    @staticmethod
    def _data_share(counts: Sequence[int]) -> List[float]:
        total = sum(counts)
        if not total:
            return [0.0 for _ in counts]
        return [count / total for count in counts]

    @staticmethod
    def _imbalance(counts: Sequence[int]) -> float:
        """Max-over-mean data-count ratio (1.0 = perfectly balanced)."""
        total = sum(counts)
        if not counts or not total:
            return 1.0
        return max(counts) / (total / len(counts))

    # -- the background controller ------------------------------------- #

    def _run_rebalance_controller(self) -> None:
        """Watch per-shard p99 latencies; rebalance on sustained imbalance.

        Every interval the controller snapshots each data-bearing shard's
        latency histogram buckets and computes the *windowed* p99 -- the
        p99 of only the requests served since the previous sample, from
        bucket-count deltas (the histograms themselves are cumulative).
        When the slowest shard's windowed p99 exceeds the median shard's
        by the configured threshold (and the window saw enough requests to
        mean anything), it triggers :meth:`rebalance` and restarts its
        observation window.
        """
        interval = self.sharding.rebalance_interval_seconds
        previous: Optional[List[Dict[object, int]]] = None
        while not self._rebalance_stop.wait(interval):
            try:
                current = self._shard_bucket_counts()
                if previous is not None and self._should_rebalance(
                    previous, current
                ):
                    self.rebalance()
                    current = None  # fresh window over the new layout
                previous = current
            except RuntimeError:
                return  # raced shutdown
            except Exception:  # pragma: no cover - keep watching
                previous = None

    def _shard_bucket_counts(self) -> List[Dict[object, int]]:
        """Cumulative latency bucket counts per data-bearing shard."""
        shard_ids = [
            shard.shard_id for shard in self._plan.shards if not shard.is_empty
        ]
        return [
            {
                bucket["le_ms"]: bucket["count"]
                for bucket in self._services[shard_id].stats()["latency"][
                    "buckets"
                ]
            }
            for shard_id in shard_ids
        ]

    def _should_rebalance(
        self,
        previous: List[Dict[object, int]],
        current: List[Dict[object, int]],
    ) -> bool:
        if len(previous) != len(current):
            return False  # the shard set changed under the window
        windows = [
            self._windowed_p99(before, after)
            for before, after in zip(previous, current)
        ]
        total = sum(count for count, _ in windows)
        p99s = sorted(p99 for count, p99 in windows if count and p99 is not None)
        if total < self.sharding.rebalance_min_requests or len(p99s) < 2:
            self._last_observed_imbalance = None
            return False
        # Lower median: for an even shard count the upper-middle element
        # can *be* the slowest shard (2 shards: median == max, ratio
        # pegged at 1.0), which would blind the controller entirely.
        median = p99s[(len(p99s) - 1) // 2]
        imbalance = p99s[-1] / median if median > 0 else 1.0
        self._last_observed_imbalance = imbalance
        threshold = self.sharding.rebalance_threshold
        return threshold is not None and imbalance >= threshold

    @staticmethod
    def _windowed_p99(
        before: Dict[object, int], after: Dict[object, int]
    ) -> Tuple[int, Optional[float]]:
        """(request count, p99 ms) of one window from bucket-count deltas."""

        def bound(le_ms: object) -> float:
            return float("inf") if le_ms == "inf" else float(le_ms)

        deltas = [
            (bound(le_ms), after[le_ms] - before.get(le_ms, 0))
            for le_ms in sorted(after, key=bound)
        ]
        count = sum(delta for _, delta in deltas)
        if count <= 0:
            return (0, None)
        rank = 0.99 * count
        seen = 0
        largest_finite = 0.0
        for le_ms, delta in deltas:
            if le_ms != float("inf"):
                largest_finite = le_ms
            seen += delta
            if seen >= rank:
                # The overflow bucket has no upper bound; report past the
                # last finite one so it still dominates any finite p99.
                return (count, le_ms if le_ms != float("inf")
                        else largest_finite * 2.0)
        return (count, largest_finite * 2.0)  # pragma: no cover - defensive

    def set_datasets(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
    ) -> None:
        """Alias of :meth:`swap_datasets` (the :class:`QueryService` name)."""
        self.swap_datasets(data_objects, feature_objects)

    def dataset_info(self) -> Dict[str, object]:
        """Version and sizes of the current (full) dataset snapshot."""
        return {
            "version": self._dataset_version,
            "data_objects": self._plan.stats.num_data,
            "feature_objects": self._num_features,
        }

    # ------------------------------------------------------------------ #
    # incremental ingest (write routing; see docs/ingest.md)

    def apply_objects(
        self,
        append_data: Sequence[DataObject] = (),
        append_features: Sequence[FeatureObject] = (),
        delete_data_oids: Sequence[str] = (),
        delete_feature_oids: Sequence[str] = (),
    ) -> Dict[str, object]:
        """Route one incremental write batch to the owning shards.

        The batch is first validated -- and versioned -- atomically against
        the router's write mirror (so a batch that any shard would reject is
        rejected whole, before any shard sees it), then routed by the same
        rules :func:`~repro.sharding.partition.partition_datasets` applied
        at build time: a data append goes to the one shard whose cell
        contains it, a feature append is replicated to every shard within
        ``max_radius`` of it (all shards when ``max_radius`` is None),
        and deletes are broadcast (shard deltas are idempotent, so
        non-owners simply ignore them).  Writes serialize against hot swaps
        and compactions on the swap lock but never quiesce reads.

        Returns:
            The applied counts plus the router delta's size summary.

        Raises:
            DatasetUpdateError: for an invalid batch (no shard is touched).
            RuntimeError: when the router is not started or shut down.
        """
        with self._lock:
            if not self._started:
                raise RuntimeError("the query service is not started")
            if self._closed:
                raise RuntimeError("the query service is shut down")
        with self._swap_lock:
            counts = self._delta.apply(
                append_data=list(append_data),
                append_features=list(append_features),
                delete_data_oids=delete_data_oids,
                delete_feature_oids=delete_feature_oids,
                base_data_oids=self._base_data_oids,
                base_feature_oids=self._base_feature_oids,
                extent=self._plan.extent,
            )
            layout = self._plan.layout
            assert layout is not None  # partition_datasets always sets it
            num_shards = layout.num_shards
            sub_data: List[List[DataObject]] = [[] for _ in range(num_shards)]
            for obj in append_data:
                sub_data[layout.locate(obj.x, obj.y)].append(obj)
            sub_features: List[List[FeatureObject]] = [
                [] for _ in range(num_shards)
            ]
            if append_features:
                if self.sharding.max_radius is None or num_shards == 1:
                    for shard_id in range(num_shards):
                        sub_features[shard_id] = list(append_features)
                else:
                    for feature in append_features:
                        for shard_id in layout.shards_within(
                            feature.x, feature.y, self.sharding.max_radius
                        ):
                            sub_features[shard_id].append(feature)
            deletes = bool(delete_data_oids) or bool(delete_feature_oids)
            for shard_id in range(num_shards):
                service = self._services[shard_id]
                if sub_data[shard_id] or sub_features[shard_id] or deletes:
                    service.apply_objects(
                        append_data=sub_data[shard_id],
                        append_features=sub_features[shard_id],
                        delete_data_oids=delete_data_oids,
                        delete_feature_oids=delete_feature_oids,
                    )
            with self._lock:
                self._counters.write_batches += 1
        return {**counts, "delta": self._delta.snapshot().counts()}

    def compact(self) -> Dict[str, object]:
        """Fold every shard's delta into its base snapshot now.

        Each shard compacts independently under its own write lock and
        quiesce (the shard extent stays pinned to the full-dataset extent,
        so grids never drift).  Compaction changes no result, so the
        router's cache and write mirror are left untouched -- the mirror
        keeps validating against the same live oid set either way.
        """
        shards = [service.compact() for service in self._services]
        return {
            "compacted": any(info["compacted"] for info in shards),
            "folded_ops": sum(info["folded_ops"] for info in shards),
            "shards": [
                {"shard": shard_id, "compacted": info["compacted"],
                 "folded_ops": info["folded_ops"]}
                for shard_id, info in enumerate(shards)
            ],
        }

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def admission(self) -> AdmissionController:
        """The router-level admission controller (shards run without one)."""
        return self._admission

    @property
    def plan(self) -> ShardingPlan:
        """The current sharding plan (replaced wholesale by hot swaps)."""
        return self._plan

    @property
    def services(self) -> List[QueryService]:
        """The per-shard query services, in shard-id order."""
        return self._services

    def stats(self) -> Dict[str, object]:
        """Aggregate router statistics (the sharded ``GET /stats`` payload).

        The router tree mirrors the :meth:`QueryService.stats` shape where
        the concepts coincide (requests, latency, result cache, dataset,
        defaults) and adds a ``sharding`` subtree plus one slim per-shard
        entry -- including each shard's own latency histogram -- under
        ``"shards"``.
        """
        with self._lock:
            counters = _RouterCounters(**vars(self._counters))
        plan_stats = self._plan.stats
        shard_data_counts = [
            len(shard.data_objects) for shard in self._plan.shards
        ]
        shard_trees: List[Dict[str, object]] = []
        for shard, service in zip(self._plan.shards, self._services):
            shard_stats = service.stats()
            shard_trees.append({
                "shard": shard.shard_id,
                "box": [shard.box.min_x, shard.box.min_y,
                        shard.box.max_x, shard.box.max_y],
                "data_objects": len(shard.data_objects),
                "feature_objects": len(shard.feature_objects),
                "requests": shard_stats["requests"],
                "latency": shard_stats["latency"],
                "batching": {
                    "batches": shard_stats["batching"]["batches"],
                    "mean_batch": shard_stats["batching"]["mean_batch"],
                },
                "index_cache": shard_stats["index_cache"],
                "ingest": {
                    "delta": shard_stats["ingest"]["delta"],
                    "compactions": shard_stats["ingest"]["compactions"],
                },
            })
        return {
            "uptime_seconds": self.uptime_seconds(),
            "started": self._started,
            "closed": self._closed,
            "requests": {
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "result_cache_hits": counters.cache_hits,
            },
            "latency": self._latency.snapshot(),
            "admission": self._admission.snapshot(),
            "result_cache": {
                "capacity": self._cache.capacity,
                "size": len(self._cache),
                **self._cache.stats.as_dict(),
            },
            "sharding": {
                "shards": plan_stats.num_shards,
                "layout": list(plan_stats.layout),
                "layout_kind": plan_stats.kind,
                "max_radius": self.sharding.max_radius,
                "active_shards": plan_stats.num_shards - plan_stats.empty_shards,
                "empty_shards": plan_stats.empty_shards,
                "feature_replication_factor": plan_stats.replication_factor,
                "grid_aligned_default": self._plan.grid_aligned(
                    self._defaults.grid_size
                ),
                "balance": {
                    "kind": plan_stats.kind,
                    "data_share": self._data_share(shard_data_counts),
                    "imbalance": self._imbalance(shard_data_counts),
                    "rebalances": counters.rebalances,
                    "last_rebalance_unix": self._last_rebalance_unix,
                    "controller": {
                        "enabled": (
                            self.sharding.rebalance_threshold is not None
                        ),
                        "threshold": self.sharding.rebalance_threshold,
                        "interval_seconds": (
                            self.sharding.rebalance_interval_seconds
                        ),
                        "min_requests": self.sharding.rebalance_min_requests,
                        "last_observed_imbalance": (
                            self._last_observed_imbalance
                        ),
                    },
                },
            },
            "dataset": {**self.dataset_info(), "swaps": counters.swaps},
            "ingest": {
                "delta": self._delta.snapshot().counts(),
                "cumulative": dict(vars(self._delta.counters)),
                "write_batches": counters.write_batches,
                "compact_threshold": self._service_config.compact_threshold,
            },
            "defaults": vars(self._defaults),
            "shards": shard_trees,
        }


__all__ = ["ShardRouter", "ShardingConfig"]
