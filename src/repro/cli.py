"""Command-line interface.

The subcommands cover the full workflow a downstream user needs:

* ``generate``    -- create a dataset file (UN / CL / FL-like / TW-like).
* ``query``       -- run a spatial preference query over a dataset file with
  any of the algorithms and print the top-k plus execution statistics.
* ``batch``       -- run many queries from a JSONL file through the batch
  engine (shared index builds) and emit one JSON result line per query.
* ``serve``       -- run the persistent HTTP query service: warm engine
  pool, micro-batching, result cache, durable planner calibration.
* ``loadgen``     -- fire a seeded open-loop workload (Poisson/diurnal
  arrivals, Zipf keywords, hotspots, bursts) at a running server or an
  in-process service and print the reconciled results ledger.
* ``analyze``     -- print the Section 6 analytical tables (duplication factor
  and cell-size cost) for given parameters.
* ``experiments`` -- regenerate the figure series (same engine as
  ``benchmarks/run_all.py``) for one figure or all of them.

Examples::

    python -m repro generate --dataset uniform --objects 10000 --output un.tsv
    python -m repro query --input un.tsv --keywords w0001,w0002 --k 10 \
        --radius-fraction 0.1 --grid-size 20 --algorithm espq-sco
    python -m repro batch --input un.tsv --queries queries.jsonl --output -
    python -m repro serve --input un.tsv --port 8787 \
        --calibration-path calibration.json
    python -m repro analyze duplication --cell-side 10 --radius 2
    python -m repro experiments --figure 7 --objects 4000
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import List, Optional, Sequence

from repro import __version__
from repro.core.analysis import duplication_factor, reducer_cost_model
from repro.core.centralized import dataset_extent
from repro.core.engine import ALGORITHM_CHOICES, EngineConfig, SPQEngine
from repro.planner import AUTO_ALGORITHM, PLANNED_ALGORITHMS
from repro.core.scoring import SCORE_MODES
from repro.exceptions import JobConfigurationError
from repro.execution import BACKEND_NAMES, resolve_backend_spec
from repro.datagen.io import load_dataset, save_dataset
from repro.datagen.queries import radius_from_cell_fraction
from repro.datagen.realistic import (
    RealisticDatasetConfig,
    generate_flickr_like,
    generate_twitter_like,
)
from repro.datagen.synthetic import (
    SyntheticDatasetConfig,
    generate_clustered,
    generate_uniform,
)
from repro.exceptions import InvalidQueryError
from repro.index.planner import BatchQuery
from repro.model.query import SpatialPreferenceQuery

DATASET_CHOICES = ("uniform", "clustered", "flickr", "twitter")


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-backend flags shared by ``query`` and ``batch``."""
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="execution backend: 'serial' (deterministic default), 'thread' "
        "(thread pool), or 'process' (true multi-core multiprocessing pool); "
        "all three return identical results (default: $REPRO_BACKEND or serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends "
        "(default: $REPRO_WORKERS or the CPU count, capped at 8)",
    )


def _engine_config(args: argparse.Namespace, **extra) -> EngineConfig:
    """Engine configuration from CLI flags, validating the backend combo.

    Raises:
        JobConfigurationError: for bad combinations such as
            ``--backend serial --workers 4`` or ``--workers 0``.
    """
    backend, workers = resolve_backend_spec(args.backend, args.workers)
    return EngineConfig(backend=backend, workers=workers, **extra)


# --------------------------------------------------------------------- #
# generate


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset in ("uniform", "clustered"):
        config = SyntheticDatasetConfig(num_objects=args.objects, seed=args.seed)
        generator = generate_uniform if args.dataset == "uniform" else generate_clustered
        data, features = generator(config)
    else:
        config = RealisticDatasetConfig(
            num_objects=args.objects,
            vocabulary_size=args.vocabulary_size,
            seed=args.seed,
            mean_keywords=7.9 if args.dataset == "flickr" else 9.8,
        )
        generator = generate_flickr_like if args.dataset == "flickr" else generate_twitter_like
        data, features = generator(config=config)
    written = save_dataset(args.output, data, features)
    print(
        f"Wrote {written} records ({len(data)} data objects, {len(features)} feature objects) "
        f"to {args.output}"
    )
    return 0


# --------------------------------------------------------------------- #
# query


def _cmd_query(args: argparse.Namespace) -> int:
    if args.explain and args.algorithm != AUTO_ALGORITHM:
        print(
            "error: --explain prints the planner's per-algorithm cost estimates "
            "and requires --algorithm auto",
            file=sys.stderr,
        )
        return 2
    data, features = load_dataset(args.input)
    if not data:
        print("error: dataset contains no data objects", file=sys.stderr)
        return 2
    keywords = {word for word in args.keywords.split(",") if word}
    if not keywords:
        print("error: --keywords must contain at least one keyword", file=sys.stderr)
        return 2

    try:
        config = _engine_config(args)
    except JobConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = SPQEngine(data, features, config=config)
    if args.radius is not None:
        radius = args.radius
    else:
        extent = dataset_extent(data, features)
        radius = radius_from_cell_fraction(extent, args.grid_size, args.radius_fraction)
    query = SpatialPreferenceQuery.create(k=args.k, radius=radius, keywords=keywords)

    try:
        result = engine.execute(query, algorithm=args.algorithm, grid_size=args.grid_size)
    except (InvalidQueryError, JobConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()
    backend_name = result.stats.get("backend", config.backend)
    print(f"Query: {query.describe()}  [algorithm={args.algorithm}, grid={args.grid_size}, "
          f"backend={backend_name}]")
    if args.explain:
        _print_plan(result.stats)
    if not result.entries:
        print("No data object has a positive score for this query.")
    for rank, entry in enumerate(result, start=1):
        print(f"  {rank:>3}. {entry.obj.oid:<16} score={entry.score:.4f} "
              f"({entry.obj.x:.3f}, {entry.obj.y:.3f})")
    if args.stats and "simulated_seconds" in result.stats:
        stats = result.stats
        print("\nExecution statistics:")
        if "planned_algorithm" in stats:
            print(f"  planned algorithm:   {stats['planned_algorithm']}")
        print(f"  reduce tasks:        {stats['num_reduce_tasks']}")
        print(f"  shuffled records:    {stats['shuffled_records']}")
        print(f"  features pruned:     {stats['features_pruned']}")
        print(f"  features examined:   {stats['features_examined']}")
        print(f"  score computations:  {stats['score_computations']}")
        print(f"  simulated job time:  {stats['simulated_seconds']:.1f}s")
    return 0


def _print_plan(stats: dict) -> None:
    """The ``--explain`` block: per-algorithm estimates plus the winner."""
    estimates = stats.get("planner_estimates", {})
    chosen = stats.get("planned_algorithm", "?")
    calibrated = "calibrated" if stats.get("planner_calibrated") else "cold start"
    print(f"Planner decision ({calibrated}):")
    for algorithm in PLANNED_ALGORITHMS:
        if algorithm not in estimates:
            continue
        marker = "  <== chosen" if algorithm == chosen else ""
        print(f"  {algorithm:<10} estimated {estimates[algorithm]:>10.2f}s{marker}")


# --------------------------------------------------------------------- #
# batch


def _parse_batch_line(
    line: str, line_number: int, args: argparse.Namespace, extent
) -> BatchQuery:
    """One JSONL query spec -> a BatchQuery with per-line overrides."""
    try:
        spec = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"line {line_number}: invalid JSON ({exc})") from exc
    if not isinstance(spec, dict):
        raise ValueError(f"line {line_number}: expected a JSON object")

    keywords = spec.get("keywords")
    if isinstance(keywords, str):
        keywords = [word for word in keywords.split(",") if word]
    if not keywords:
        raise ValueError(f"line {line_number}: 'keywords' must be a non-empty list")

    grid_size = spec.get("grid_size")
    if grid_size is not None:
        try:
            grid_size = int(grid_size)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"line {line_number}: grid_size must be an integer") from exc
        if grid_size < 1:
            raise ValueError(f"line {line_number}: grid_size must be >= 1, got {grid_size}")

    radius = spec.get("radius")
    if radius is None:
        if args.radius is not None:
            radius = args.radius
        else:
            # Same rule as `repro query`: a fraction of the cell side of the
            # grid this query actually runs on (per-line override included).
            effective_grid = grid_size if grid_size is not None else args.grid_size
            radius = radius_from_cell_fraction(
                extent, effective_grid, args.radius_fraction
            )
    try:
        query = SpatialPreferenceQuery.create(
            k=int(spec.get("k", args.k)), radius=float(radius), keywords=keywords
        )
    except (InvalidQueryError, TypeError) as exc:
        raise ValueError(f"line {line_number}: {exc}") from exc
    algorithm = spec.get("algorithm")
    if algorithm is not None and algorithm not in ALGORITHM_CHOICES:
        raise ValueError(
            f"line {line_number}: unknown algorithm {algorithm!r}; "
            f"expected one of {ALGORITHM_CHOICES}"
        )
    score_mode = spec.get("score_mode")
    if score_mode is not None and score_mode not in SCORE_MODES:
        raise ValueError(
            f"line {line_number}: unknown score_mode {score_mode!r}; "
            f"expected one of {SCORE_MODES}"
        )
    return BatchQuery(
        query=query,
        algorithm=algorithm,
        grid_size=grid_size,
        score_mode=score_mode,
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    data, features = load_dataset(args.input)
    if not data:
        print("error: dataset contains no data objects", file=sys.stderr)
        return 2
    extent = dataset_extent(data, features)

    items: List[BatchQuery] = []
    try:
        handle = open(args.queries, "r", encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot read query file: {exc}", file=sys.stderr)
        return 2
    with handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                items.append(_parse_batch_line(line, line_number, args, extent))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    if not items:
        print("error: query file contains no queries", file=sys.stderr)
        return 2

    try:
        config = _engine_config(args)
    except JobConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = SPQEngine(data, features, config=config)
    try:
        results = engine.execute_many(
            items, algorithm=args.algorithm, grid_size=args.grid_size
        )
    except (InvalidQueryError, JobConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        engine.close()

    try:
        out = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot write output file: {exc}", file=sys.stderr)
        return 2
    try:
        for item, result in zip(items, results):
            record = {
                "keywords": sorted(item.query.keywords),
                "k": item.query.k,
                "radius": item.query.radius,
                "algorithm": item.algorithm or args.algorithm,
                "results": [
                    {"oid": e.obj.oid, "score": e.score, "x": e.obj.x, "y": e.obj.y}
                    for e in result
                ],
            }
            if "planned_algorithm" in result.stats:
                record["planned_algorithm"] = result.stats["planned_algorithm"]
            if args.stats:
                record["stats"] = {
                    key: result.stats.get(key)
                    for key in (
                        "grid_size",
                        "backend",
                        "workers",
                        "shuffled_records",
                        "features_pruned",
                        "features_examined",
                        "score_computations",
                        "simulated_seconds",
                        "planner_estimates",
                        "index",
                    )
                    if key in result.stats
                }
            out.write(json.dumps(record) + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    if args.stats:
        cache = engine.index_cache_stats
        print(
            f"Executed {len(results)} queries "
            f"(index cache: {cache['hits']} hits, {cache['misses']} misses)",
            file=sys.stderr,
        )
    return 0


# --------------------------------------------------------------------- #
# serve


def _run_server_loop(server, shutdown) -> None:
    """Serve until SIGTERM/SIGINT, then run ``shutdown`` callbacks in order.

    The shared tail of every serving command (``serve``, ``serve
    --cluster``, ``shard-node``): both signals trigger the same clean
    drain, and ``server.shutdown`` runs off the signal-handler frame
    because ``serve_forever`` must return before anything can be joined.
    """

    def _request_stop(signum: int, frame: object) -> None:
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {}
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _request_stop)
    except ValueError:  # pragma: no cover - not in the main thread
        pass
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down", file=sys.stderr)
        server.server_close()
        for callback in shutdown:
            callback()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import QueryService, ServiceConfig, make_server

    if args.cluster:
        return _cmd_serve_cluster(args)
    data, features = load_dataset(args.input)
    if not data:
        print("error: dataset contains no data objects", file=sys.stderr)
        return 2
    sharded = args.shards > 1
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.max_radius is not None and not sharded:
        print(
            "warning: --max-radius only affects sharded serving "
            "(--shards > 1); ignored",
            file=sys.stderr,
        )
    if not sharded and (
        args.layout != "uniform" or args.rebalance_threshold is not None
    ):
        print(
            "warning: --layout/--rebalance-threshold only affect sharded "
            "serving (--shards > 1); ignored",
            file=sys.stderr,
        )
    try:
        engine_config = _engine_config(args, grid_size=args.grid_size)
        service_config = ServiceConfig(
            engines=args.engines,
            max_batch=args.max_batch,
            batch_window_seconds=args.batch_window_ms / 1000.0,
            result_cache_capacity=args.result_cache,
            compact_threshold=args.compact_threshold,
            calibration_path=args.calibration_path,
            calibration_seed_path=args.calibration_seed,
            checkpoint_interval_seconds=args.checkpoint_interval,
            default_k=args.k,
            default_radius=args.radius,
            default_radius_fraction=args.radius_fraction,
            default_algorithm=args.algorithm,
            default_grid_size=args.grid_size,
            admission_queue_depth=args.admission_depth,
            default_deadline_ms=args.default_deadline_ms,
        )
        if sharded:
            from repro.sharding import ShardRouter, ShardingConfig

            service = ShardRouter(
                data,
                features,
                engine_config=engine_config,
                service_config=service_config,
                sharding=ShardingConfig(
                    shards=args.shards,
                    max_radius=args.max_radius,
                    layout=args.layout,
                    rebalance_threshold=args.rebalance_threshold,
                ),
            )
        else:
            service = QueryService(
                data, features, engine_config=engine_config, config=service_config
            )
    except (ValueError, InvalidQueryError, JobConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = make_server(
            service, args.host, args.port, quiet=not args.access_log
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2

    if not sharded and args.calibration_path and service.planner is None:
        print(
            "warning: --calibration-path is ignored because the planner is "
            "disabled (planner_mode / $REPRO_PLANNER is 'off'); calibration "
            "will be neither restored nor saved",
            file=sys.stderr,
        )
    if sharded and args.calibration_path:
        print(
            f"calibration snapshots are per shard: "
            f"{args.calibration_path}.shard0 .. "
            f".shard{args.shards - 1}"
        )
    service.start()
    stats = service.stats()
    persistence = (
        stats["planner"].get("persistence")
        if args.calibration_path and not sharded
        else None
    )
    if persistence and persistence["rejected"]:
        print(
            f"warning: calibration snapshot rejected, starting cold: "
            f"{persistence['rejected']}",
            file=sys.stderr,
        )
    elif persistence and persistence["restored"]:
        print(
            f"calibration restored from {args.calibration_path} "
            f"({stats['planner']['calibration']['observations']} observations)"
        )
    shard_note = (
        f", {args.shards} shards ({args.layout} layout)" if sharded else ""
    )
    print(
        f"repro serve: listening on http://{args.host}:{server.port}  "
        f"({len(data)} data objects, {len(features)} feature objects, "
        f"{args.engines} engines{shard_note})"
    )
    rebalance_note = "  POST /rebalance" if sharded else ""
    print(
        "endpoints: POST /query  POST /batch  POST /objects  "
        f"POST /datasets{rebalance_note}  GET /healthz  GET /stats"
    )
    sys.stdout.flush()

    def _request_stop(signum: int, frame: object) -> None:
        # serve_forever must return before we can join anything; shutdown()
        # blocks until it does, so run it off the signal-handler frame.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous_handlers = {}
    try:
        # SIGTERM (and SIGINT, which background shells mask) both trigger
        # the same clean shutdown: drain, save calibration, close engines.
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _request_stop)
    except ValueError:  # pragma: no cover - not in the main thread
        pass
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down", file=sys.stderr)
        server.server_close()
        service.shutdown()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    if args.calibration_path and not sharded and service.planner is not None:
        save_error = service.stats()["planner"]["persistence"]["last_error"]
        if save_error:
            print(
                f"warning: calibration could not be saved: {save_error}",
                file=sys.stderr,
            )
        else:
            print(f"calibration saved to {args.calibration_path}")
    return 0


# --------------------------------------------------------------------- #
# serve --cluster / shard-node


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --cluster N``: spawn a local fleet, front it, serve."""
    from repro.cluster import (
        ClusterConfig,
        ClusterRouter,
        NodeSpec,
        spawn_local_nodes,
        terminate_nodes,
    )
    from repro.server import ServiceConfig, make_server

    if args.shards > 1:
        print(
            "error: --cluster and --shards are mutually exclusive (--cluster N "
            "already shards the dataset across N node processes)",
            file=sys.stderr,
        )
        return 2
    if args.cluster < 1 or args.replication < 1:
        print(
            f"error: --cluster and --replication must be >= 1, got "
            f"{args.cluster} and {args.replication}",
            file=sys.stderr,
        )
        return 2
    data, features = load_dataset(args.input)
    if not data:
        print("error: dataset contains no data objects", file=sys.stderr)
        return 2
    try:
        engine_config = _engine_config(args, grid_size=args.grid_size)
        service_config = ServiceConfig(
            default_k=args.k,
            default_radius=args.radius,
            default_radius_fraction=args.radius_fraction,
            default_algorithm=args.algorithm,
            default_grid_size=args.grid_size,
            admission_queue_depth=args.admission_depth,
            default_deadline_ms=args.default_deadline_ms,
        )
        cluster_config = ClusterConfig(
            shards=args.cluster,
            max_radius=args.max_radius,
            heartbeat_interval=args.heartbeat_interval,
            liveness_timeout=args.liveness_timeout,
            node_deadline=args.node_deadline,
            result_cache_capacity=args.result_cache,
        )
    except (ValueError, InvalidQueryError, JobConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    extra_args: List[str] = []
    if args.backend is not None:
        extra_args += ["--backend", args.backend]
    if args.workers is not None:
        extra_args += ["--workers", str(args.workers)]
    if args.compact_threshold:
        # Compaction is node-local in cluster mode: each node folds its own
        # delta when it crosses the threshold (the cluster epoch is kept).
        extra_args += ["--compact-threshold", str(args.compact_threshold)]
    print(
        f"repro serve: spawning {args.cluster} shard(s) x {args.replication} "
        f"replica(s) = {args.cluster * args.replication} node process(es)"
    )
    sys.stdout.flush()
    try:
        nodes = spawn_local_nodes(
            args.input,
            args.cluster,
            replication=args.replication,
            host=args.host,
            grid_size=args.grid_size,
            engines=args.engines,
            max_radius=args.max_radius,
            calibration_path=args.calibration_path,
            calibration_seed=args.calibration_seed,
            dataset=(data, features),
            log_dir=args.node_log_dir,
            extra_args=extra_args,
        )
    except (OSError, RuntimeError, ValueError) as exc:
        print(f"error: cannot spawn shard nodes: {exc}", file=sys.stderr)
        return 2
    try:
        router = ClusterRouter(
            data,
            features,
            [NodeSpec(url=node.url, shard_index=node.shard_index) for node in nodes],
            cluster=cluster_config,
            engine_config=engine_config,
            service_config=service_config,
        )
        server = make_server(router, args.host, args.port, quiet=not args.access_log)
    except (OSError, ValueError, InvalidQueryError) as exc:
        terminate_nodes(nodes)
        print(f"error: cannot start the cluster router: {exc}", file=sys.stderr)
        return 2
    if args.calibration_path:
        print(
            f"calibration snapshots are per node: "
            f"{args.calibration_path}.node0-0 .. "
            f".node{args.cluster - 1}-{args.replication - 1}"
        )
    router.start()
    for node in nodes:
        print(
            f"node shard {node.shard_index} replica {node.replica_rank}: "
            f"{node.url}  (pid {node.process.pid}, log {node.log_path})"
        )
    print(
        f"repro serve: listening on http://{args.host}:{server.port}  "
        f"({len(data)} data objects, {len(features)} feature objects, "
        f"{args.cluster} shards x {args.replication} replicas)"
    )
    print(
        "endpoints: POST /query  POST /batch  POST /objects  "
        "POST /datasets  GET /healthz  GET /stats"
    )
    sys.stdout.flush()
    _run_server_loop(
        server, [router.shutdown, lambda: terminate_nodes(nodes)]
    )
    return 0


def _cmd_shard_node(args: argparse.Namespace) -> int:
    """``repro shard-node``: one shard slice of a dataset behind HTTP."""
    from repro.cluster import NodeConfig, ShardNodeService
    from repro.server import ServiceConfig, make_server

    data = None
    dataset_source = f"file {args.input}"
    if args.dataset_shm:
        from repro.execution.shm import attach_dataset

        try:
            data, features = attach_dataset(args.dataset_shm)
            dataset_source = f"shared-memory segment {args.dataset_shm}"
        except (OSError, ValueError) as exc:
            print(
                f"warning: cannot attach dataset segment "
                f"{args.dataset_shm!r} ({exc}); loading {args.input}",
                file=sys.stderr,
            )
            data = None
    if data is None:
        data, features = load_dataset(args.input)
    if not data:
        print("error: dataset contains no data objects", file=sys.stderr)
        return 2
    try:
        engine_config = _engine_config(args, grid_size=args.grid_size)
        service_config = ServiceConfig(
            engines=args.engines,
            max_batch=args.max_batch,
            result_cache_capacity=args.result_cache,
            compact_threshold=args.compact_threshold,
            calibration_path=args.calibration_path,
            calibration_seed_path=args.calibration_seed,
            checkpoint_interval_seconds=args.checkpoint_interval,
            default_grid_size=args.grid_size,
        )
        node = ShardNodeService(
            data,
            features,
            node_config=NodeConfig(
                shard_index=args.shard_index,
                shards=args.shards,
                max_radius=args.max_radius,
                dataset_epoch=args.dataset_epoch,
            ),
            engine_config=engine_config,
            service_config=service_config,
        )
    except (ValueError, InvalidQueryError, JobConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = make_server(node, args.host, args.port, quiet=not args.access_log)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    node.start()
    slice_info = node.dataset_info()
    print(f"repro shard-node: dataset from {dataset_source}")
    # The spawner tails the log for this exact line to learn the
    # OS-assigned port; keep the "listening on http://..." wording stable.
    print(
        f"repro shard-node: shard {args.shard_index}/{args.shards} "
        f"listening on http://{args.host}:{server.port}  "
        f"(node {node.node_id}, {slice_info['data_objects']} data objects, "
        f"{slice_info['feature_objects']} feature objects)"
    )
    print(
        "endpoints: POST /query  POST /batch  POST /objects  "
        "POST /datasets  GET /healthz  GET /stats  GET /heartbeat"
    )
    sys.stdout.flush()
    _run_server_loop(server, [node.shutdown])
    return 0


# --------------------------------------------------------------------- #
# loadgen


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """``repro loadgen``: fire a seeded open-loop workload at a service.

    Two targets: ``--url`` drives a running ``repro serve`` over HTTP
    (keep-alive client fleet); without it an in-process service (or shard
    router with ``--shards``) is built from the same dataset, which is
    the zero-setup way to experiment with admission control.
    """
    from repro.traffic import (
        HttpTarget,
        LoadGenerator,
        ServiceTarget,
        TrafficModel,
        WorkloadConfig,
    )

    data, features = load_dataset(args.input)
    if not features:
        print("error: dataset contains no feature objects", file=sys.stderr)
        return 2
    try:
        workload = WorkloadConfig(
            seed=args.seed,
            duration_seconds=args.duration,
            rate=args.rate,
            arrival=args.arrival,
            diurnal_amplitude=args.diurnal_amplitude,
            zipf_exponent=args.zipf_exponent,
            keywords_per_query=args.keywords_per_query,
            k=args.k,
            radius=args.radius,
            deadline_ms=args.deadline_ms,
            hotspot_fraction=args.hotspot_fraction,
            burst_every_seconds=args.burst_every,
            burst_size=args.burst_size,
            slow_client_fraction=args.slow_client_fraction,
            clients=args.clients,
        )
        model = TrafficModel(features, dataset_extent(data, features), workload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    schedule = model.schedule()
    service = None
    if args.url:
        target = HttpTarget(args.url)
    else:
        from repro.server import QueryService, ServiceConfig

        service_config = ServiceConfig(
            admission_queue_depth=args.admission_depth,
            default_deadline_ms=args.default_deadline_ms,
        )
        if args.shards > 1:
            from repro.sharding import ShardRouter, ShardingConfig

            service = ShardRouter(
                data,
                features,
                service_config=service_config,
                sharding=ShardingConfig(shards=args.shards),
            )
        else:
            service = QueryService(data, features, config=service_config)
        service.start()
        target = ServiceTarget(service)
    print(
        f"loadgen: firing {len(schedule)} requests over "
        f"{workload.duration_seconds:.1f}s ({workload.arrival} arrivals, "
        f"mean {workload.rate:.0f} rps, {workload.clients} clients) at "
        f"{args.url or 'in-process service'}",
        file=sys.stderr,
    )
    try:
        generator = LoadGenerator(schedule, target)
        ledger = generator.run()
    finally:
        if service is not None:
            service.shutdown()
        if args.url:
            target.close()
    summary = ledger.summary()
    summary["lost"] = generator.lost
    if args.url:
        summary["keepalive"] = target.reuse_stats()
    if args.ledger:
        ledger.write_jsonl(args.ledger)
        print(f"loadgen: per-request ledger written to {args.ledger}",
              file=sys.stderr)
    print(json.dumps(summary, indent=2, sort_keys=True))
    counts = summary["counts"]
    ok = not generator.lost and not counts["error"] and not counts["timeout"]
    return 0 if ok and summary["reconciled"] else 1


# --------------------------------------------------------------------- #
# analyze


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.what == "duplication":
        df = duplication_factor(args.cell_side, args.radius)
        print(f"cell side a = {args.cell_side}, radius r = {args.radius}")
        print(f"duplication factor df = {df:.4f}")
        print(f"expected feature copies for |F| = {args.features}: {df * args.features:.0f}")
    else:  # cell-size
        print("cell side | df       | reducer cost df*a^4 (normalised)")
        print("----------|----------|--------------------------------")
        for divisor in (2, 4, 8, 16, 32, 64):
            side = 1.0 / divisor
            radius = side * args.radius_fraction
            print(
                f"1/{divisor:<7} | {duplication_factor(side, radius):<8.4f} | "
                f"{reducer_cost_model(side, radius):.3e}"
            )
    return 0


# --------------------------------------------------------------------- #
# experiments


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import experiments as exp

    figure_map = {
        "5": lambda: exp.figure5_flickr(args.objects),
        "6": lambda: exp.figure6_twitter(args.objects),
        "7": lambda: exp.figure7_uniform(args.objects),
        "8": lambda: exp.figure8_scalability(),
        "9": lambda: exp.figure9_clustered(args.objects),
    }
    figures = list(figure_map) if args.figure == "all" else [args.figure]
    for figure in figures:
        print(f"\n===== Figure {figure} =====")
        for label, sweep in figure_map[figure]().items():
            print(f"\n--- {label} ---")
            print(sweep.as_table())
    return 0


# --------------------------------------------------------------------- #
# parser


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser covering every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spatial preference queries using keywords (EDBT 2017 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a dataset file")
    generate.add_argument("--dataset", choices=DATASET_CHOICES, required=True)
    generate.add_argument("--objects", type=int, default=10_000)
    generate.add_argument("--vocabulary-size", type=int, default=5_000,
                          help="dictionary size for flickr/twitter-like datasets")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    query = subparsers.add_parser("query", help="run a query over a dataset file")
    query.add_argument("--input", required=True)
    query.add_argument("--keywords", required=True, help="comma-separated query keywords")
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--radius", type=float, default=None,
                       help="absolute query radius (overrides --radius-fraction)")
    query.add_argument("--radius-fraction", type=float, default=0.10,
                       help="radius as a fraction of the grid-cell side (default 0.10)")
    query.add_argument("--grid-size", type=int, default=50)
    query.add_argument("--algorithm", choices=ALGORITHM_CHOICES, default="espq-sco",
                       help="algorithm to run, or 'auto' to let the cost-based "
                            "planner choose per query")
    query.add_argument("--explain", action="store_true",
                       help="with --algorithm auto: print the planner's "
                            "per-algorithm cost estimates and the chosen algorithm")
    query.add_argument("--stats", action="store_true", help="print execution statistics")
    _add_backend_arguments(query)
    query.set_defaults(func=_cmd_query)

    batch = subparsers.add_parser(
        "batch", help="run a JSONL query file through the batch engine"
    )
    batch.add_argument("--input", required=True, help="dataset file (TSV)")
    batch.add_argument(
        "--queries",
        required=True,
        help="JSONL file: one JSON object per query, e.g. "
        '{"keywords": ["w0001"], "k": 10, "radius": 2.0, "algorithm": "espq-sco"}',
    )
    batch.add_argument(
        "--output", default="-", help="result JSONL path, or '-' for stdout (default)"
    )
    batch.add_argument("--k", type=int, default=10, help="default k for query lines")
    batch.add_argument("--radius", type=float, default=None,
                       help="default absolute radius (overrides --radius-fraction)")
    batch.add_argument("--radius-fraction", type=float, default=0.10,
                       help="default radius as a fraction of the grid-cell side")
    batch.add_argument("--grid-size", type=int, default=50)
    batch.add_argument("--algorithm", choices=ALGORITHM_CHOICES, default="espq-sco",
                       help="default algorithm for query lines ('auto' engages "
                            "the cost-based planner per query)")
    batch.add_argument("--stats", action="store_true",
                       help="attach per-query stats and print cache summary")
    _add_backend_arguments(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve", help="run the persistent HTTP query service over a dataset file"
    )
    serve.add_argument("--input", required=True, help="dataset file (TSV)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="TCP port (0 binds an ephemeral port, printed on start)")
    serve.add_argument("--engines", type=int, default=2,
                       help="warm engine-pool size = micro-batch dispatcher threads "
                            "(per shard when --shards > 1)")
    serve.add_argument("--shards", type=int, default=1,
                       help="spatial shards: partition the dataset into N disjoint "
                            "extent slices, one query service per shard, "
                            "scatter-gather merge (1 = unsharded)")
    serve.add_argument("--max-radius", type=float, default=None,
                       help="with --shards > 1: largest query radius served exactly "
                            "(bounds cross-shard feature replication; queries above "
                            "it are rejected; default: unbounded, features "
                            "replicated to every shard)")
    serve.add_argument("--layout", choices=("uniform", "skew"), default="uniform",
                       help="with --shards > 1: shard extent layout -- 'uniform' "
                            "splits the extent most-square, 'skew' balances "
                            "per-shard object counts with kd splits over the data "
                            "histogram (clustered datasets)")
    serve.add_argument("--rebalance-threshold", type=float, default=None,
                       help="with --shards > 1: per-shard p99 imbalance ratio above "
                            "which the background controller re-derives a skew "
                            "layout from the live data distribution (default: "
                            "controller off; POST /rebalance stays available)")
    serve.add_argument("--cluster", type=int, default=0,
                       help="cluster mode: spawn N shard-node processes (each its "
                            "own OS process behind HTTP) and front them with the "
                            "cluster router -- heartbeats, failover, degraded mode "
                            "(0 = off; mutually exclusive with --shards)")
    serve.add_argument("--replication", type=int, default=1,
                       help="with --cluster: node processes per shard; >= 2 lets "
                            "queries fail over when a node dies")
    serve.add_argument("--heartbeat-interval", type=float, default=2.0,
                       help="with --cluster: seconds between fleet heartbeat rounds")
    serve.add_argument("--liveness-timeout", type=float, default=6.0,
                       help="with --cluster: silence after which a node is dead")
    serve.add_argument("--node-deadline", type=float, default=10.0,
                       help="with --cluster: per-node request deadline in seconds")
    serve.add_argument("--node-log-dir", default=None,
                       help="with --cluster: directory for per-node log files "
                            "(default: a fresh temporary directory)")
    serve.add_argument("--max-batch", type=int, default=8,
                       help="largest micro-batch per execute_many call")
    serve.add_argument("--batch-window-ms", type=float, default=0.0,
                       help="how long a dispatcher waits for batchmates "
                            "(0 = natural batching: group only what is queued)")
    serve.add_argument("--compact-threshold", type=int, default=0,
                       help="fold the write delta into the base dataset once it "
                            "holds this many ops (0 disables auto-compaction; "
                            "see docs/ingest.md)")
    serve.add_argument("--result-cache", type=int, default=256,
                       help="result-cache entries, LRU (0 disables the cache)")
    serve.add_argument("--calibration-path", default=None,
                       help="durable planner-calibration snapshot: restored on "
                            "start, checkpointed while serving, saved on shutdown")
    serve.add_argument("--calibration-seed", default=None,
                       help="global calibration snapshot that seeds cold shards/"
                            "nodes (no scoped snapshot yet); never written to "
                            "(default: the --calibration-path base itself)")
    serve.add_argument("--checkpoint-interval", type=float, default=60.0,
                       help="calibration checkpoint cadence in seconds "
                            "(0 = save only on shutdown)")
    serve.add_argument("--k", type=int, default=10, help="default k for requests")
    serve.add_argument("--radius", type=float, default=None,
                       help="default absolute radius (overrides --radius-fraction)")
    serve.add_argument("--radius-fraction", type=float, default=0.10,
                       help="default radius as a fraction of the grid-cell side")
    serve.add_argument("--grid-size", type=int, default=50)
    serve.add_argument("--algorithm", choices=ALGORITHM_CHOICES, default="espq-sco",
                       help="default algorithm for requests ('auto' engages the "
                            "cost-based planner per query)")
    serve.add_argument("--admission-depth", type=int, default=0,
                       help="admission queue depth (max requests admitted but "
                            "unfinished); beyond it requests are shed with "
                            "HTTP 429; 0 disables admission control "
                            "(see docs/traffic.md)")
    serve.add_argument("--default-deadline-ms", type=float, default=None,
                       help="deadline applied to requests that carry no "
                            "'deadline_ms' field (admission control only)")
    serve.add_argument("--access-log", action="store_true",
                       help="log one line per HTTP request to stderr")
    _add_backend_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    shard_node = subparsers.add_parser(
        "shard-node",
        help="run one cluster shard node: load the full dataset, keep shard "
             "i's slice, serve it over HTTP (spawned by 'serve --cluster')",
    )
    shard_node.add_argument("--input", required=True,
                            help="the FULL dataset file (TSV); the node "
                                 "partitions it deterministically and keeps "
                                 "its own shard's slice")
    shard_node.add_argument("--shard-index", type=int, required=True,
                            help="which shard slice this node serves (0-based)")
    shard_node.add_argument("--shards", type=int, required=True,
                            help="total shard count of the cluster partitioning")
    shard_node.add_argument("--max-radius", type=float, default=None,
                            help="feature replication radius of the partitioning "
                                 "(must match the router's; default: unbounded)")
    shard_node.add_argument("--dataset-shm", default=None,
                            help="name of a shared-memory dataset segment "
                                 "published by the spawner; attached instead "
                                 "of parsing --input (which stays the "
                                 "fallback when the attach fails)")
    shard_node.add_argument("--dataset-epoch", default="boot",
                            help="epoch tag of the boot dataset (the router "
                                 "re-tags it on every hot swap)")
    shard_node.add_argument("--host", default="127.0.0.1")
    shard_node.add_argument("--port", type=int, default=0,
                            help="TCP port (default 0: the OS assigns one, "
                                 "reported on the 'listening on' line)")
    shard_node.add_argument("--engines", type=int, default=1,
                            help="warm engine-pool size of this node")
    shard_node.add_argument("--max-batch", type=int, default=8,
                            help="largest micro-batch per execute_many call")
    shard_node.add_argument("--compact-threshold", type=int, default=0,
                            help="node-local auto-compaction threshold in delta "
                                 "ops (0 disables)")
    shard_node.add_argument("--result-cache", type=int, default=0,
                            help="node-local result-cache entries (default 0: "
                                 "the cluster router caches merged responses; "
                                 "node caches would only hide executions)")
    shard_node.add_argument("--grid-size", type=int, default=50)
    shard_node.add_argument("--calibration-path", default=None,
                            help="this node's own durable calibration snapshot "
                                 "(the spawner derives <base>.node<i>-<r>)")
    shard_node.add_argument("--calibration-seed", default=None,
                            help="snapshot that seeds this node's calibrator "
                                 "on a cold start (no file at "
                                 "--calibration-path yet); never written to")
    shard_node.add_argument("--checkpoint-interval", type=float, default=60.0,
                            help="calibration checkpoint cadence in seconds "
                                 "(0 = save only on shutdown)")
    shard_node.add_argument("--access-log", action="store_true",
                            help="log one line per HTTP request to stderr")
    _add_backend_arguments(shard_node)
    shard_node.set_defaults(func=_cmd_shard_node)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="fire a seeded open-loop workload at a service "
             "(see docs/traffic.md)",
    )
    loadgen.add_argument("--input", required=True,
                         help="dataset file (TSV); defines the vocabulary and "
                              "extent the workload draws from")
    loadgen.add_argument("--url", default=None,
                         help="target a running 'repro serve' "
                              "(default: build an in-process service)")
    loadgen.add_argument("--shards", type=int, default=1,
                         help="in-process mode: front the dataset with a "
                              "shard router of this many shards")
    loadgen.add_argument("--admission-depth", type=int, default=0,
                         help="in-process mode: admission queue depth "
                              "(0 disables admission control)")
    loadgen.add_argument("--default-deadline-ms", type=float, default=None,
                         help="in-process mode: deadline for requests without "
                              "a 'deadline_ms' field")
    loadgen.add_argument("--seed", type=int, default=7,
                         help="workload seed (same seed = identical schedule)")
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="schedule length in seconds")
    loadgen.add_argument("--rate", type=float, default=50.0,
                         help="mean arrival rate in requests/second")
    loadgen.add_argument("--arrival", choices=("poisson", "diurnal"),
                         default="poisson")
    loadgen.add_argument("--diurnal-amplitude", type=float, default=0.8,
                         help="relative swing of the diurnal rate in [0, 1)")
    loadgen.add_argument("--zipf-exponent", type=float, default=1.1,
                         help="keyword popularity skew (0 = uniform)")
    loadgen.add_argument("--keywords-per-query", type=int, default=2)
    loadgen.add_argument("--k", type=int, default=10)
    loadgen.add_argument("--radius", type=float, default=None,
                         help="query radius forwarded into every request")
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request deadline forwarded on the wire")
    loadgen.add_argument("--hotspot-fraction", type=float, default=0.0,
                         help="share of queries drawn from a seeded hotspot "
                              "sub-region")
    loadgen.add_argument("--burst-every", type=float, default=0.0,
                         help="inject a same-instant burst every N seconds "
                              "(0 disables)")
    loadgen.add_argument("--burst-size", type=int, default=0,
                         help="requests per burst instant")
    loadgen.add_argument("--slow-client-fraction", type=float, default=0.0,
                         help="share of clients that trickle request bytes")
    loadgen.add_argument("--clients", type=int, default=8,
                         help="simulated client fleet size")
    loadgen.add_argument("--ledger", default=None,
                         help="write the per-request JSONL ledger here")
    loadgen.set_defaults(func=_cmd_loadgen)

    analyze = subparsers.add_parser("analyze", help="Section 6 analytical tables")
    analyze.add_argument("what", choices=("duplication", "cell-size"))
    analyze.add_argument("--cell-side", type=float, default=10.0)
    analyze.add_argument("--radius", type=float, default=2.0)
    analyze.add_argument("--radius-fraction", type=float, default=0.10)
    analyze.add_argument("--features", type=int, default=1_000_000)
    analyze.set_defaults(func=_cmd_analyze)

    experiments = subparsers.add_parser("experiments", help="regenerate figure series")
    experiments.add_argument("--figure", choices=("5", "6", "7", "8", "9", "all"), default="all")
    experiments.add_argument("--objects", type=int, default=4_000)
    experiments.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
