"""Shared fixtures for the benchmark suite.

Each figure of the paper gets one bench module; they all share the four
scaled-down datasets (FL, TW, UN, CL) built here once per session.  The
benchmarks measure the wall-clock cost of executing a query end-to-end on the
simulated MapReduce substrate; the *simulated* job times that reproduce the
paper's figures are produced by ``benchmarks/run_all.py`` and recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    _clustered_spec,
    _flickr_spec,
    _twitter_spec,
    _uniform_spec,
)

#: Smaller cardinality for the benchmark runs so the whole suite stays fast.
BENCH_NUM_OBJECTS = 4_000


def pytest_benchmark_update_machine_info(config, machine_info):
    """Stamp the execution backend into every pytest-benchmark JSON artifact.

    Perf trajectories are only comparable across machines/runs when the
    backend and worker count that produced them are recorded alongside.
    """
    from repro.execution import execution_info

    machine_info["repro_execution"] = execution_info()


@pytest.fixture(scope="session")
def flickr_spec():
    return _flickr_spec(BENCH_NUM_OBJECTS)


@pytest.fixture(scope="session")
def twitter_spec():
    return _twitter_spec(BENCH_NUM_OBJECTS)


@pytest.fixture(scope="session")
def uniform_spec():
    return _uniform_spec(BENCH_NUM_OBJECTS)


@pytest.fixture(scope="session")
def clustered_spec():
    return _clustered_spec(BENCH_NUM_OBJECTS)


def execute(spec, algorithm, **overrides):
    """Run one query with the spec's defaults (plus overrides) and return stats."""
    varied = spec.with_overrides(**overrides) if overrides else spec
    engine = varied.build_engine()
    query = varied.build_query()
    result = engine.execute(query, algorithm=algorithm, grid_size=varied.grid_size)
    return result
