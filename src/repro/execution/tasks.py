"""Task-level execution primitives shared by every backend.

A MapReduce job run decomposes into *map tasks* (one per input split) and
*reduce tasks* (one per reduce partition).  Both are expressed here as plain
functions over picklable arguments so that any backend -- inline, thread
pool or process pool -- executes the exact same code path:

* :func:`run_map_task` applies ``job.map`` to one split and buckets the
  emitted key-value pairs by reduce partition, numbering emissions with a
  *task-local* sequence.  The orchestrator rebases local sequences onto a
  global counter in task order, which reproduces the emission order of a
  fully serial run bit for bit.
* :func:`run_reduce_task` sorts one partition's bucket by ``(sort_key,
  sequence)``, groups it by ``group_key`` and feeds each group to
  ``job.reduce`` through a consumption-tracking iterator (early
  termination accounting).

Each task gets its own :class:`~repro.mapreduce.counters.Counters`; the
orchestrator merges them in task-index order, so the aggregate is
deterministic regardless of how tasks were scheduled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import JobExecutionError
from repro.index.columns import DataBlock
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob

#: One bucketed shuffle entry: ``(sort_key, sequence, key, value)``.  The
#: sequence number is a stable tie-break so sorting is deterministic even
#: when sort keys collide.
ShuffleEntry = Tuple[Any, int, Any, Any]


@dataclass
class ReduceTaskReport:
    """Execution statistics of one reduce task (== one grid cell in SPQ jobs)."""

    task_index: int
    num_groups: int = 0
    input_records: int = 0
    consumed_records: int = 0
    output_records: int = 0
    shuffle_bytes: int = 0
    counters: Counters = field(default_factory=Counters)

    def work_units(self) -> int:
        """Algorithm-reported work (counters in group ``"work"``), if any.

        Falls back to the number of consumed records so that jobs that do not
        report explicit work units still get a sensible cost.
        """
        work_group = self.counters.group("work")
        if work_group:
            return sum(work_group.values())
        return self.consumed_records


@dataclass
class MapTaskResult:
    """Everything one map task hands back to the orchestrator.

    Attributes:
        task_index: Position of the split in the input (merge order).
        buckets: Sparse reduce-partition buckets with *task-local* sequence
            numbers; the orchestrator rebases them onto the global counter.
        num_input_records: Records this task consumed.
        num_emitted: Key-value pairs this task emitted (sequence span).
        counters: Counter deltas of this task, including the job's own
            map-side counters.
        task_state: The job's per-task cache export (see
            :meth:`~repro.mapreduce.job.MapReduceJob.task_state`), handed
            back explicitly so no mutable cache crosses a process boundary.
    """

    task_index: int
    buckets: Dict[int, List[ShuffleEntry]]
    num_input_records: int
    num_emitted: int
    counters: Counters
    task_state: Optional[Any] = None


class _ConsumptionTrackingIterator:
    """Wraps a value iterator and counts how many items the reducer pulled.

    A :class:`~repro.index.columns.DataBlock` stands in for that many
    individual data records, so pulling one weighs ``len(block)`` -- the
    consumption accounting stays identical to the per-entry stream it
    replaces.
    """

    def __init__(self, values: Sequence[Any]) -> None:
        self._values = values
        self._position = 0
        self._extra = 0

    def __iter__(self) -> "_ConsumptionTrackingIterator":
        return self

    def __next__(self) -> Any:
        if self._position >= len(self._values):
            raise StopIteration
        value = self._values[self._position]
        self._position += 1
        if value.__class__ is DataBlock:
            self._extra += len(value) - 1
        return value

    @property
    def consumed(self) -> int:
        return self._position + self._extra


def run_map_task(
    job: MapReduceJob,
    task_index: int,
    records: Iterable[Any],
    num_reducers: int,
) -> MapTaskResult:
    """Apply ``job.map`` to one input split and bucket the output."""
    counters = Counters()
    buckets: Dict[int, List[ShuffleEntry]] = {}
    sequence = 0
    num_records = 0
    for record in records:
        num_records += 1
        try:
            emitted = job.map(record, counters)
        except Exception as exc:  # pragma: no cover - defensive re-raise
            raise JobExecutionError(f"map failed on record {record!r}: {exc}") from exc
        for key, value in emitted:
            partition = job.partition(key, num_reducers)
            if not 0 <= partition < num_reducers:
                raise JobExecutionError(
                    f"partition {partition} outside [0, {num_reducers}) for key {key!r}"
                )
            bucket = buckets.get(partition)
            if bucket is None:
                bucket = buckets[partition] = []
            bucket.append((job.sort_key(key), sequence, key, value))
            sequence += 1
            counters.increment(counter_names.GROUP_MAP, counter_names.MAP_OUTPUT_RECORDS)
            counters.increment(counter_names.GROUP_SHUFFLE, counter_names.SHUFFLE_RECORDS)
            counters.increment(
                counter_names.GROUP_SHUFFLE,
                counter_names.SHUFFLE_BYTES,
                job.estimated_record_size(key, value),
            )
    counters.increment(counter_names.GROUP_MAP, counter_names.MAP_INPUT_RECORDS, num_records)
    return MapTaskResult(
        task_index=task_index,
        buckets=buckets,
        num_input_records=num_records,
        num_emitted=sequence,
        counters=counters,
        task_state=job.task_state(),
    )


def sort_bucket(bucket: List[ShuffleEntry]) -> None:
    """Sort one partition bucket by ``(sort_key, sequence)``, in place."""
    bucket.sort(key=lambda entry: (entry[0], entry[1]))


def run_reduce_task(
    job: MapReduceJob,
    task_index: int,
    bucket: List[ShuffleEntry],
    preloaded_block: Optional[Tuple[Any, DataBlock]] = None,
) -> Tuple[List[Any], ReduceTaskReport]:
    """Sort, group and reduce one partition bucket.

    ``preloaded_block`` is the columnar replacement for the partition's
    preloaded data entries: a ``(group, DataBlock)`` pair injected ahead of
    the live values of its group (data always sorts before features in SPQ
    jobs, so "first" is exactly where the per-entry stream would have put
    it).  A block whose group has no live entries is reduced as its own
    data-only group, in group order; accounting (``input_records``,
    ``num_groups``, consumption) counts the block as ``len(block)`` records,
    matching the stream it replaces.  Requires orderable group keys, which
    every preloaded-shuffle job has (cell ids).
    """
    sort_bucket(bucket)
    block_group: Any = None
    block: Optional[DataBlock] = None
    block_records = 0
    if preloaded_block is not None:
        block_group, block = preloaded_block
        block_records = len(block)
    report = ReduceTaskReport(
        task_index=task_index, input_records=len(bucket) + block_records
    )
    outputs: List[Any] = []

    for group, entries in itertools.groupby(bucket, key=lambda entry: job.group_key(entry[2])):
        values = [value for _, _, _, value in entries]
        if block is not None and block_group <= group:
            if block_group < group:
                _reduce_group(job, task_index, block_group, [block], report, outputs)
            else:
                values.insert(0, block)
            block = None
        _reduce_group(job, task_index, group, values, report, outputs)
    if block is not None:
        _reduce_group(job, task_index, block_group, [block], report, outputs)
    return outputs, report


def _reduce_group(
    job: MapReduceJob,
    task_index: int,
    group: Any,
    values: Sequence[Any],
    report: ReduceTaskReport,
    outputs: List[Any],
) -> None:
    """Feed one group to ``job.reduce`` and fold the results into the report."""
    report.num_groups += 1
    iterator = _ConsumptionTrackingIterator(values)
    try:
        produced = job.reduce(group, iterator, report.counters)
        produced = list(produced) if produced is not None else []
    except Exception as exc:  # pragma: no cover - defensive re-raise
        raise JobExecutionError(
            f"reduce failed for group {group!r} in task {task_index}: {exc}"
        ) from exc
    report.consumed_records += iterator.consumed
    report.output_records += len(produced)
    outputs.extend(produced)
