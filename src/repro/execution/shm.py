"""Shared-memory segments for the columnar data plane.

The process backend used to ship every preloaded reduce partition to its
workers as a pickle blob -- per query, per task, through a pipe.  Here the
orchestrator instead *publishes* the index's columnar form once as a
``multiprocessing.shared_memory`` segment and ships only ``(segment name,
partition index)`` descriptors; workers attach the segment (an ``shm_open``
+ ``mmap``, constant in dataset size), build each partition's reduce block
from zero-copy column slices, and cache it for every later query over the
same snapshot.  The same mechanism backs the shard-node dataset segment:
``repro serve --cluster`` publishes the parsed dataset once and every
locally spawned node attaches instead of re-reading and re-parsing the
dataset file.

Lifecycle rules (the part the VDBMS bug literature says to get right):

* every segment wrapper is refcounted: :meth:`SharedSegment.acquire` /
  :meth:`SharedSegment.release`, with close-on-last-release;
* the **creator** unlinks the segment on its last release (attachments that
  outlive the creator keep their mapping -- POSIX keeps the memory alive
  until the last close -- but no name is left behind in ``/dev/shm``);
* attachers deregister from ``multiprocessing.resource_tracker`` so the
  tracker does not double-unlink a segment it does not own (bpo-38119);
* a ``weakref.finalize`` backstop closes leaked wrappers at GC/exit, and
  :func:`live_segment_names` exposes every wrapper this process still holds
  open so tests can assert nothing leaks;
* when shared memory is unavailable (import failure or a failing probe),
  :func:`shared_memory_available` returns False and callers fall back to
  the pickle-blob path -- behaviour, results and counters are identical.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import weakref
from typing import Dict, List, Optional, Tuple

from repro.index.columns import ColumnStore, DataBlock

__all__ = [
    "AttachedReducePlane",
    "OwnedSegmentPlane",
    "SharedSegment",
    "attach_dataset",
    "attach_reduce_plane",
    "attach_segment",
    "create_segment",
    "live_segment_names",
    "publish_dataset_segment",
    "shared_memory_available",
]

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - exotic builds only
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

#: Name prefix of every segment this package creates; leak checks (tests and
#: the CI gate) look for stray ``/dev/shm/repro_dp_*`` entries.
SEGMENT_PREFIX = "repro_dp_"

_COUNTER = itertools.count(1)
_LIVE_LOCK = threading.Lock()
#: Every open wrapper's ``(name, owner)``, keyed by the raw segment's id --
#: a name can legitimately appear twice (the owner plus a same-process
#: attacher), so the registry must not collapse by name, and it must not
#: hold the wrapper itself (that would pin it and defeat the GC backstop).
_LIVE: Dict[int, Tuple[str, bool]] = {}

_availability: Optional[bool] = None


def shared_memory_available() -> bool:
    """True when shared-memory segments can actually be created here.

    Probes once by creating and destroying a tiny segment; a read-only
    ``/dev/shm`` or a missing implementation flips the whole data plane to
    its pickle fallback rather than failing queries.
    """
    global _availability
    if _availability is None:
        if shared_memory is None:
            _availability = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _availability = True
            except (OSError, ValueError):
                _availability = False
    return _availability


class SharedSegment:
    """One shared-memory segment with an explicit refcounted lifecycle.

    Args:
        segment: The underlying ``SharedMemory`` object.
        owner: True for the creating process (unlinks on last release).

    The wrapper starts with a refcount of 1 (the caller's reference).
    ``acquire``/``release`` nest; the last release closes the mapping and,
    for the owner, unlinks the name.  Both are idempotent after close.
    """

    def __init__(self, segment: "shared_memory.SharedMemory", owner: bool) -> None:
        self._segment = segment
        self.name = segment.name
        self.owner = owner
        self._refs = 1
        self._lock = threading.Lock()
        self._closed = False
        with _LIVE_LOCK:
            _LIVE[id(segment)] = (self.name, owner)
        # GC/exit backstop: a leaked wrapper must not leave a named segment
        # behind.  The finalizer captures the raw segment, never ``self``.
        self._finalizer = weakref.finalize(
            self, _finalize_segment, segment, owner, self.name
        )

    @property
    def buf(self) -> memoryview:
        """The segment's buffer (valid until the last release)."""
        return self._segment.buf

    @property
    def closed(self) -> bool:
        """True once the last reference has been released."""
        return self._closed

    def acquire(self) -> "SharedSegment":
        """Add one reference; raises if the segment is already closed."""
        with self._lock:
            if self._closed:
                raise ValueError(f"segment {self.name} is closed")
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last release closes (and owner-unlinks)."""
        with self._lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
        self._finalizer.detach()
        _finalize_segment(self._segment, self.owner, self.name)


def _finalize_segment(
    segment: "shared_memory.SharedMemory", owner: bool, name: str
) -> None:
    with _LIVE_LOCK:
        _LIVE.pop(id(segment), None)
    try:
        segment.close()
    except BufferError:  # pragma: no cover - exported views still alive
        # Leaving the mapping to process exit is better than crashing the
        # caller; the unlink below still removes the public name.
        pass
    if owner:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def live_segment_names() -> List[str]:
    """Names of every segment wrapper this process currently holds open."""
    with _LIVE_LOCK:
        return sorted({name for name, _ in _LIVE.values()})


def create_segment(payload: bytes) -> SharedSegment:
    """Create an owner segment holding ``payload`` (name: ``repro_dp_*``)."""
    if not shared_memory_available():
        raise OSError("shared memory is not available")
    size = max(1, len(payload))
    while True:
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{next(_COUNTER)}"
        try:
            segment = shared_memory.SharedMemory(create=True, size=size, name=name)
            break
        except FileExistsError:  # pragma: no cover - stale name collision
            continue
    segment.buf[: len(payload)] = payload
    return SharedSegment(segment, owner=True)


def attach_segment(name: str) -> SharedSegment:
    """Attach to an existing segment by name (non-owner)."""
    if shared_memory is None:
        raise OSError("shared memory is not available")
    segment = shared_memory.SharedMemory(name=name)
    with _LIVE_LOCK:
        owned_here = any(
            live_name == name and owner for live_name, owner in _LIVE.values()
        )
    if (
        resource_tracker is not None
        and os.name == "posix"
        and not owned_here
        and multiprocessing.parent_process() is None
    ):
        # A standalone attacher (e.g. a spawned shard-node process) has its
        # own resource tracker, which believes it owns the segment and would
        # unlink it at interpreter exit, racing the real owner (bpo-38119);
        # only the creator's registration may stand.  Pool workers SHARE the
        # parent's tracker, where register entries collapse by name -- there
        # an unregister would delete the creator's own entry, so skip it --
        # likewise when this very process owns the segment (attaching to
        # your own plane collapses into the creator's register entry).
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    return SharedSegment(segment, owner=False)


# ---------------------------------------------------------------------- #
# reduce-plane publication (orchestrator side) and attachment (worker side)


class OwnedSegmentPlane:
    """A published columnar plane: the owner-side segment plus descriptors.

    Built once per dataset snapshot from a serialized
    :class:`~repro.index.columns.ColumnStore`; hands ``(name, partition)``
    descriptors to the process backend for as long as it is alive.
    """

    def __init__(self, payload: bytes) -> None:
        self.segment = create_segment(payload)
        self.size = len(payload)

    @property
    def name(self) -> str:
        """The shared-memory segment name attachers look up."""
        return self.segment.name

    def partition_ref(self, partition: int) -> Optional[Tuple[str, int]]:
        """Descriptor workers attach by, or None once released."""
        if self.segment.closed:
            return None
        return (self.segment.name, partition)

    def release(self) -> None:
        """Drop the owner reference (unlinks the name on last release)."""
        self.segment.release()


class AttachedReducePlane:
    """Worker-side view of a published reduce plane.

    Attaches the segment once, then materializes and caches one
    :class:`~repro.index.columns.DataBlock` per reduce partition from the
    zero-copy column slices.  Blocks contain plain Python objects, so they
    stay valid after :meth:`close` drops the buffer views.
    """

    def __init__(self, name: str) -> None:
        self.segment = attach_segment(name)
        self.store = ColumnStore.attach(self.segment.buf)
        if self.store.data is None or self.store.cells is None:
            self.close()
            raise ValueError(f"segment {name} does not hold a reduce plane")
        self._blocks: Dict[int, Optional[Tuple[int, DataBlock]]] = {}

    def block(self, partition: int) -> Optional[Tuple[int, DataBlock]]:
        """``(group, block)`` of one partition (None when it has no data)."""
        cached = self._blocks.get(partition, False)
        if cached is not False:
            return cached
        cells = self.store.cells
        data = self.store.data
        rows = cells.partition_rows(partition)
        if len(rows) == 0:
            built: Optional[Tuple[int, DataBlock]] = None
        else:
            xs = data.xs
            ys = data.ys
            oids = data.oids
            objs = [DataObject(oid=oids[row], x=xs[row], y=ys[row]) for row in rows]
            block = DataBlock(
                int(cells.cells[rows[0]]),
                objs,
                [xs[row] for row in rows],
                [ys[row] for row in rows],
            )
            built = (block.group, block)
        self._blocks[partition] = built
        return built

    def close(self) -> None:
        """Release the attachment (cached blocks stay usable)."""
        store, self.store = self.store, None
        if store is not None:
            store.detach()
        self.segment.release()


def attach_reduce_plane(name: str) -> AttachedReducePlane:
    """Attach the reduce plane published under ``name``."""
    return AttachedReducePlane(name)


# ---------------------------------------------------------------------- #
# dataset segments (cluster spawn: parse once, attach everywhere)


def publish_dataset_segment(data_objects, feature_objects) -> SharedSegment:
    """Publish a full parsed dataset as one owner segment.

    ``repro serve --cluster N`` calls this once and hands the segment name
    to every spawned shard node (``--dataset-shm``): the nodes attach and
    materialize the datasets from the columns instead of each re-reading
    and re-parsing the dataset file.  The caller releases the segment after
    the fleet is up -- every node attaches during startup, before its ready
    line, so the spawner's ready-wait doubles as the hand-off barrier.

    Raises:
        OSError: when shared memory is unavailable here (callers fall back
            to file loading on every node).
    """
    payload = ColumnStore.from_datasets(
        data_objects=data_objects, feature_objects=feature_objects
    ).to_bytes()
    return create_segment(payload)


def attach_dataset(name: str):
    """Materialize ``(data_objects, feature_objects)`` from a dataset segment.

    Attaches, copies the rows out as model objects (equal to the objects the
    publisher packed, oids/coordinates/keyword sets included), then detaches
    and releases -- the attachment only spans this call.

    Raises:
        OSError: when the segment cannot be attached.
        ValueError: when the segment does not hold both dataset columns.
    """
    segment = attach_segment(name)
    try:
        store = ColumnStore.attach(segment.buf)
        try:
            if store.data is None or store.features is None:
                raise ValueError(f"segment {name} does not hold a dataset")
            data_objects = store.data.to_objects()
            feature_objects = store.features.to_objects()
        finally:
            store.detach()
    finally:
        segment.release()
    return data_objects, feature_objects


from repro.model.objects import DataObject  # noqa: E402  (leaf import, avoids cycle)
