#!/usr/bin/env python
"""Quickstart: the paper's running example (Figure 1 / Table 2).

Five hotels (data objects) are ranked by the quality of Italian restaurants
(feature objects) within 1.5 distance units.  The expected answer, worked out
in Example 1 of the paper, is hotel ``p1`` with score 1.0 (thanks to
restaurant ``f4``, a perfect match for the keyword "italian").

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DataObject, FeatureObject, SPQEngine, SpatialPreferenceQuery

HOTELS = [
    DataObject("p1", 4.6, 4.8),
    DataObject("p2", 7.5, 1.7),
    DataObject("p3", 8.9, 5.2),
    DataObject("p4", 1.8, 1.8),
    DataObject("p5", 1.9, 9.0),
]

RESTAURANTS = [
    FeatureObject("f1", 2.8, 1.2, {"italian", "gourmet"}),
    FeatureObject("f2", 5.0, 3.8, {"chinese", "cheap"}),
    FeatureObject("f3", 8.7, 1.9, {"sushi", "wine"}),
    FeatureObject("f4", 3.8, 5.5, {"italian"}),
    FeatureObject("f5", 5.2, 5.1, {"mexican", "exotic"}),
    FeatureObject("f6", 7.4, 5.4, {"greek", "traditional"}),
    FeatureObject("f7", 3.0, 8.1, {"italian", "spaghetti"}),
    FeatureObject("f8", 9.5, 7.0, {"indian"}),
]


def main() -> None:
    engine = SPQEngine(HOTELS, RESTAURANTS)
    query = SpatialPreferenceQuery.create(k=1, radius=1.5, keywords={"italian"})

    print(f"Query: {query.describe()}")
    print()

    for algorithm in ("pspq", "espq-len", "espq-sco", "centralized"):
        result = engine.execute(query, algorithm=algorithm, grid_size=4)
        answer = ", ".join(
            f"{entry.obj.oid} (score {entry.score:.2f})" for entry in result
        )
        line = f"  {algorithm:<12} -> {answer}"
        if "simulated_seconds" in result.stats:
            line += f"   [simulated job time {result.stats['simulated_seconds']:.1f}s]"
        print(line)

    print()
    print("All algorithms agree: the best hotel is p1 (an Italian restaurant,")
    print("f4, lies within 1.5 units and matches the query keyword exactly).")


if __name__ == "__main__":
    main()
