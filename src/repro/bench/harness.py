"""Generic experiment harness: one-parameter sweeps over the SPQ algorithms.

An :class:`ExperimentSpec` captures the defaults of Table 3 (grid size 50,
|q.W| = 3 for the real datasets / 5 for the synthetic ones, radius 10% of the
cell side, k = 10) and :func:`run_sweep` varies exactly one of those
parameters, executing every algorithm for every value and recording the
simulated job time plus the main work counters.  The resulting
:class:`SweepResult` renders as a text table whose rows are the series plotted
in the corresponding figure of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.centralized import dataset_extent
from repro.core.engine import SPQEngine
from repro.datagen.queries import QueryWorkload
from repro.model.objects import DataObject, FeatureObject
from repro.model.query import SpatialPreferenceQuery
from repro.text.vocabulary import Vocabulary

#: The algorithm names swept by default, in the paper's order.
DEFAULT_ALGORITHMS: Tuple[str, ...] = ("pspq", "espq-len", "espq-sco")


@dataclass
class ExperimentSpec:
    """Fixed parameters of one experiment (the defaults of Table 3)."""

    name: str
    data_objects: Sequence[DataObject]
    feature_objects: Sequence[FeatureObject]
    grid_size: int = 50
    num_keywords: int = 3
    radius_fraction: float = 0.10
    k: int = 10
    keyword_strategy: str = "random"
    seed: int = 42
    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        """Copy of the spec with some parameters replaced."""
        return replace(self, **kwargs)

    def build_query(self, grid_size: Optional[int] = None) -> SpatialPreferenceQuery:
        """A query with this spec's keyword count, radius fraction and k."""
        grid_size = grid_size or self.grid_size
        extent = dataset_extent(self.data_objects, self.feature_objects)
        vocabulary = Vocabulary.from_features(self.feature_objects)
        workload = QueryWorkload(vocabulary, extent, seed=self.seed)
        return workload.make_query(
            k=self.k,
            num_keywords=self.num_keywords,
            grid_size=grid_size,
            radius_fraction=self.radius_fraction,
            strategy=self.keyword_strategy,
        )

    def build_engine(self) -> SPQEngine:
        """An engine over this spec's datasets."""
        return SPQEngine(list(self.data_objects), list(self.feature_objects))


@dataclass
class SweepPoint:
    """One measurement: a parameter value, an algorithm and its statistics.

    ``backend``/``workers`` record the execution backend that produced the
    point, so exported series stay comparable across machines and configs.
    """

    parameter_value: object
    algorithm: str
    simulated_seconds: float
    wall_seconds: float
    features_examined: int
    score_computations: int
    shuffled_records: int
    result_scores: List[float] = field(default_factory=list)
    backend: str = "serial"
    workers: int = 1


@dataclass
class SweepResult:
    """All measurements of one sweep plus presentation helpers."""

    experiment: str
    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, algorithm: str) -> List[Tuple[object, float]]:
        """The (x, simulated seconds) series of one algorithm."""
        return [
            (point.parameter_value, point.simulated_seconds)
            for point in self.points
            if point.algorithm == algorithm
        ]

    def algorithms(self) -> List[str]:
        """Algorithm names present in this sweep, in first-seen order."""
        seen: List[str] = []
        for point in self.points:
            if point.algorithm not in seen:
                seen.append(point.algorithm)
        return seen

    def values(self) -> List[object]:
        """Distinct x-axis parameter values, in first-seen order."""
        seen: List[object] = []
        for point in self.points:
            if point.parameter_value not in seen:
                seen.append(point.parameter_value)
        return seen

    def speedup(self, baseline: str = "pspq", against: str = "espq-sco") -> Dict[object, float]:
        """Per-value ratio baseline / against of simulated time (paper's 'x faster')."""
        base = dict(self.series(baseline))
        other = dict(self.series(against))
        return {
            value: base[value] / other[value]
            for value in base
            if value in other and other[value] > 0
        }

    def as_table(self) -> str:
        """Text table: one row per parameter value, one column per algorithm."""
        return format_series_table(self)


def format_series_table(sweep: SweepResult, unit: str = "sim s") -> str:
    """Render a sweep as the table the corresponding paper figure plots."""
    algorithms = sweep.algorithms()
    header = [sweep.parameter] + [f"{name} ({unit})" for name in algorithms]
    rows: List[List[str]] = []
    for value in sweep.values():
        row = [str(value)]
        for algorithm in algorithms:
            matching = [
                p.simulated_seconds for p in sweep.points
                if p.algorithm == algorithm and p.parameter_value == value
            ]
            row.append(f"{matching[0]:.1f}" if matching else "-")
        rows.append(row)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "-|-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _run_single(
    spec: ExperimentSpec,
    engine: SPQEngine,
    algorithm: str,
    parameter_value: object,
    query: SpatialPreferenceQuery,
    grid_size: int,
) -> SweepPoint:
    result = engine.execute(query, algorithm=algorithm, grid_size=grid_size)
    return SweepPoint(
        parameter_value=parameter_value,
        algorithm=algorithm,
        simulated_seconds=result.stats["simulated_seconds"],
        wall_seconds=result.stats["wall_seconds"],
        features_examined=result.stats["features_examined"],
        score_computations=result.stats["score_computations"],
        shuffled_records=result.stats["shuffled_records"],
        result_scores=result.scores(),
        backend=str(result.stats.get("backend", "serial")),
        workers=int(result.stats.get("workers", 1)),
    )


def run_sweep(
    spec: ExperimentSpec,
    parameter: str,
    values: Sequence[object],
    algorithms: Optional[Sequence[str]] = None,
) -> SweepResult:
    """Vary one parameter and measure every algorithm at every value.

    Supported parameter names: ``"grid_size"``, ``"num_keywords"``,
    ``"radius_fraction"``, ``"k"``.

    Raises:
        ValueError: for an unsupported parameter name.
    """
    supported = {"grid_size", "num_keywords", "radius_fraction", "k"}
    if parameter not in supported:
        raise ValueError(f"unsupported sweep parameter {parameter!r}; expected one of {supported}")
    algorithms = tuple(algorithms or spec.algorithms)
    engine = spec.build_engine()
    sweep = SweepResult(experiment=spec.name, parameter=parameter)
    for value in values:
        varied = spec.with_overrides(**{parameter: value})
        grid_size = varied.grid_size
        query = varied.build_query(grid_size=grid_size)
        for algorithm in algorithms:
            sweep.points.append(
                _run_single(varied, engine, algorithm, value, query, grid_size)
            )
    return sweep


def run_scalability(
    name: str,
    dataset_factory,
    sizes: Sequence[int],
    spec_defaults: Optional[dict] = None,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> SweepResult:
    """Dataset-size sweep (the paper's Figure 8).

    Args:
        name: Experiment name.
        dataset_factory: Callable ``size -> (data_objects, feature_objects)``.
        sizes: Total object counts to generate.
        spec_defaults: Extra :class:`ExperimentSpec` fields (grid size, k, ...).
        algorithms: Algorithms to run.
    """
    spec_defaults = dict(spec_defaults or {})
    sweep = SweepResult(experiment=name, parameter="dataset_size")
    for size in sizes:
        data_objects, feature_objects = dataset_factory(size)
        spec = ExperimentSpec(
            name=f"{name}-{size}",
            data_objects=data_objects,
            feature_objects=feature_objects,
            **spec_defaults,
        )
        engine = spec.build_engine()
        query = spec.build_query()
        for algorithm in algorithms:
            sweep.points.append(
                _run_single(spec, engine, algorithm, size, query, spec.grid_size)
            )
    return sweep
