"""Stdlib JSON-over-HTTP front-end of the query service.

Endpoints (see ``docs/service.md`` for the full protocol reference):

* ``POST /query``    -- one request object in, one response object out.
* ``POST /batch``    -- JSONL (or a JSON array) in, JSONL out; the whole
  batch is validated before any query runs, mirroring ``execute_many``.
* ``POST /datasets`` -- hot-swap the served dataset: quiesces in-flight
  batches, swaps (and, when sharded, repartitions) atomically, and
  invalidates result caches by dataset version.  Body: ``{"path": ...}``
  (a dataset file the server loads) or inline ``{"data_objects": [...],
  "feature_objects": [...]}`` object lists.
* ``POST /objects``  -- incremental append/delete of data and feature
  objects, absorbed by the delta overlay without rebuilding or swapping
  the base snapshot (``docs/ingest.md``).  Body: ``{"append":
  {"data_objects": [...], "feature_objects": [...]}, "delete":
  {"data_oids": [...], "feature_oids": [...]}}``; both sections optional,
  deletes are applied before appends.
* ``GET /healthz``   -- liveness: ``{"status": "ok"}`` plus uptime.
* ``GET /stats``     -- the service's full counter tree (requests, latency
  histograms, batching, result/index caches, planner persistence and --
  when sharded -- the router + per-shard subtrees).
* ``GET /heartbeat`` -- cluster-node identity probe (node id, shard index,
  dataset epoch/version); only served when the bound service exposes a
  ``heartbeat()`` method (shard nodes do), ``404`` otherwise.
* ``POST /rebalance`` -- re-derive the shard layout from the live data
  distribution (``docs/sharding.md``); only served when the bound service
  exposes a ``rebalance()`` method (the shard router does), ``404``
  otherwise.  Body: empty or ``{"layout": "skew"|"uniform"}``.

The bound service is a :class:`~repro.server.service.QueryService`, a
:class:`~repro.sharding.router.ShardRouter` (``repro serve --shards N``),
a :class:`~repro.cluster.router.ClusterRouter` (``--cluster N``) or a
:class:`~repro.cluster.node.ShardNodeService` (``repro shard-node``); all
expose the same serving surface (``submit``, ``submit_many``, ``stats``,
``uptime_seconds``, ``swap_datasets``), so the handler never branches on
which it is.  Cluster-specific capabilities are duck-typed the same way:
a service with a ``heartbeat`` method gets the ``/heartbeat`` route, and a
service declaring ``accepts_dataset_epoch`` may receive the optional
``"epoch"`` field on ``POST /datasets`` (the cluster router tags fleet-wide
swaps with it).

Built on :class:`http.server.ThreadingHTTPServer` -- one thread per
connection, no third-party dependencies -- which is exactly what the
micro-batcher wants: concurrent handler threads all feed the shared request
queue, and the dispatcher pool turns their simultaneous requests into
``execute_many`` batches.

Error mapping: invalid requests (bad JSON, unknown fields, invalid
parameters or combinations) are ``400`` with ``{"error": ...}``; shed
requests (admission queue full, deadline blown -- ``docs/traffic.md``) are
``429`` with ``{"error": ..., "shed": true, "retry_after_ms": ...}`` and a
``Retry-After`` header; unknown paths are ``404``; unsupported methods are
``405``; execution failures are ``500``.  The server never dies on a bad
request.  Every error response (429 included) is sent with ``Connection:
close``: error paths may leave the request body unread, and closing is
what keeps those unread bytes from desyncing keep-alive framing.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Mapping, Optional, Tuple

from repro.exceptions import OverloadError, ReproError
from repro.server.admission import shed_payload
from repro.server.protocol import batch_lines, error_payload
from repro.server.service import QueryService

#: Largest accepted request body (16 MiB); protects the JSON parser.
MAX_BODY_BYTES = 16 * 1024 * 1024


class QueryHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`QueryService`."""

    #: Handler threads die with the process; a stuck connection cannot
    #: block interpreter exit.
    daemon_threads = True

    #: socketserver's default listen backlog is 5.  Overload traffic
    #: reconnects constantly (every shed closes its connection), and a
    #: 5-deep SYN backlog answers the excess with kernel resets -- the
    #: exact silent-drop failure admission control exists to prevent.
    #: A deeper backlog keeps every connection alive long enough to be
    #: *told* it is shed.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: QueryService,
        quiet: bool = True,
    ) -> None:
        """Bind to ``address`` (port 0 picks an ephemeral port).

        The service must be started by the caller; the server only routes
        requests to it.  ``quiet`` suppresses per-request access logging.
        """
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.quiet = quiet

    @property
    def port(self) -> int:
        """The bound TCP port (useful with an ephemeral bind)."""
        return self.server_address[1]

    # ------------------------------------------------------------------ #
    # connection tracking: clients hold HTTP/1.1 keep-alive connections
    # open between requests, so a handler thread can outlive serve_forever
    # blocked on the next request line.  shutdown() therefore also shuts
    # down every live connection -- a stopped server must stop answering,
    # not keep serving whoever already had a warm connection.

    def process_request(self, request, client_address) -> None:
        """Track the accepted connection before handing it to a handler."""
        with self._connections_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        """Stop tracking a connection its handler has finished with."""
        with self._connections_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        """Shut down every live (possibly idle keep-alive) connection."""
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def shutdown(self) -> None:
        """Stop serve_forever, then cut every live keep-alive connection."""
        super().shutdown()
        self.close_connections()


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the bound :class:`QueryService`."""

    server: QueryHTTPServer
    protocol_version = "HTTP/1.1"
    #: Idle keep-alive connections are dropped after this many seconds so a
    #: silent client cannot pin a handler thread forever; active request
    #: processing does not read the socket and is unaffected.
    timeout = 120.0
    #: Responses go out as two small writes (header flush, then body); with
    #: Nagle on, the second write stalls behind the peer's delayed ACK once
    #: a keep-alive connection ages out of quick-ACK mode (~40ms per
    #: response).  TCP_NODELAY sends both immediately.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------ #
    # routing

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/healthz``, ``/stats`` and (on shard nodes) ``/heartbeat``."""
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "uptime_seconds": self.server.service.uptime_seconds(),
            })
        elif self.path == "/stats":
            self._send_json(200, self.server.service.stats())
        elif self.path == "/heartbeat":
            heartbeat = getattr(self.server.service, "heartbeat", None)
            if callable(heartbeat):
                self._send_json(200, heartbeat())
            else:
                self._send_json(404, error_payload(
                    "this server is not a cluster shard node"
                ))
        elif self.path in ("/query", "/batch", "/datasets", "/objects",
                           "/rebalance"):
            self._send_json(405, error_payload(f"use POST for {self.path}"))
        else:
            self._send_json(404, error_payload(f"unknown path {self.path!r}"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/query``, ``/batch``, ``/datasets``, ``/objects``, ``/rebalance``."""
        if self.path == "/query":
            self._handle_query()
        elif self.path == "/batch":
            self._handle_batch()
        elif self.path == "/datasets":
            self._handle_datasets()
        elif self.path == "/objects":
            self._handle_objects()
        elif self.path == "/rebalance":
            self._handle_rebalance()
        elif self.path in ("/healthz", "/stats", "/heartbeat"):
            self._send_json(405, error_payload(f"use GET for {self.path}"))
        else:
            self._send_json(404, error_payload(f"unknown path {self.path!r}"))

    # ------------------------------------------------------------------ #
    # endpoints

    def _handle_query(self) -> None:
        admission = getattr(self.server.service, "admission", None)
        if admission is not None:
            retry_after = admission.overloaded()
            if retry_after is not None:
                # Fast shed: when the admission queue is already full the
                # request cannot be served whatever its body says, so the
                # 429 goes out without reading (or even size-checking) the
                # body.  _send_shed closes the connection, which is what
                # keeps the unread bytes from desyncing keep-alive framing.
                admission.record_fast_shed()
                self._send_shed(shed_payload("admission queue full", retry_after))
                self._drain_unread_body()
                return
        body = self._read_body()
        if body is None:
            return
        try:
            spec = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_json(400, error_payload(f"invalid JSON: {exc}"))
            return
        try:
            payload = self.server.service.submit(spec)
        except OverloadError as exc:
            # Before the generic ReproError -> 400 rule: a shed request is
            # not a bad request, and the body must carry the shed contract.
            self._send_shed(shed_payload(str(exc), exc.retry_after_ms))
            return
        except ReproError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500
            self._send_json(500, error_payload(f"{type(exc).__name__}: {exc}"))
            return
        self._send_json(200, payload)

    def _handle_batch(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            specs = self._parse_batch_body(body)
        except ValueError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        try:
            payloads = self.server.service.submit_many(specs)
        except OverloadError as exc:
            self._send_shed(shed_payload(str(exc), exc.retry_after_ms))
            return
        except ReproError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500
            self._send_json(500, error_payload(f"{type(exc).__name__}: {exc}"))
            return
        self._send_text(200, batch_lines(payloads), "application/x-ndjson")

    def _handle_datasets(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            spec = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_json(400, error_payload(f"invalid JSON: {exc}"))
            return
        epoch: Optional[str] = None
        if (
            getattr(self.server.service, "accepts_dataset_epoch", False)
            and isinstance(spec, Mapping)
            and "epoch" in spec
        ):
            # Shard nodes accept the router's epoch tag alongside either
            # body shape; plain services reject it as an unknown field.
            spec = dict(spec)
            epoch = spec.pop("epoch")
            if not isinstance(epoch, str) or not epoch:
                self._send_json(400, error_payload(
                    f"'epoch' must be a non-empty string, got {epoch!r}"
                ))
                return
        try:
            data, features = _parse_dataset_spec(spec)
        except ValueError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        try:
            if epoch is not None:
                info = self.server.service.swap_datasets(
                    data, features, epoch=epoch
                )
            else:
                info = self.server.service.swap_datasets(data, features)
        except ReproError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500
            self._send_json(500, error_payload(f"{type(exc).__name__}: {exc}"))
            return
        self._send_json(200, {"status": "ok", "dataset": info})

    def _handle_objects(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            spec = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_json(400, error_payload(f"invalid JSON: {exc}"))
            return
        epoch: Optional[str] = None
        if (
            getattr(self.server.service, "accepts_dataset_epoch", False)
            and isinstance(spec, Mapping)
            and "epoch" in spec
        ):
            # Same duck-typing as POST /datasets: the cluster router tags
            # the write batches it pushes to shard nodes with an epoch.
            spec = dict(spec)
            epoch = spec.pop("epoch")
            if not isinstance(epoch, str) or not epoch:
                self._send_json(400, error_payload(
                    f"'epoch' must be a non-empty string, got {epoch!r}"
                ))
                return
        try:
            append_data, append_features, delete_data, delete_features = (
                # An epoch-tagged empty body is a legal epoch bump: the
                # cluster router pushes every write batch to every live
                # node, including nodes the batch routed nothing to.
                _parse_objects_spec(spec, allow_empty=epoch is not None)
            )
        except ValueError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        try:
            if epoch is not None:
                info = self.server.service.apply_objects(
                    append_data=append_data,
                    append_features=append_features,
                    delete_data_oids=delete_data,
                    delete_feature_oids=delete_features,
                    epoch=epoch,
                )
            else:
                info = self.server.service.apply_objects(
                    append_data=append_data,
                    append_features=append_features,
                    delete_data_oids=delete_data,
                    delete_feature_oids=delete_features,
                )
        except ReproError as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500
            self._send_json(500, error_payload(f"{type(exc).__name__}: {exc}"))
            return
        self._send_json(200, {"status": "ok", "applied": info})

    def _handle_rebalance(self) -> None:
        """Re-derive the shard layout from the live data distribution.

        Served only when the bound service exposes a ``rebalance`` method
        (the shard router does; plain services and cluster fronts answer
        ``404``) -- the same duck-typing as ``/heartbeat``.  Body: empty,
        or ``{"layout": "skew"|"uniform"}``.
        """
        rebalance = getattr(self.server.service, "rebalance", None)
        if not callable(rebalance):
            self._send_json(404, error_payload(
                "this server is not a sharded router; nothing to rebalance"
            ))
            return
        body = self._read_body()
        if body is None:
            return
        kwargs = {}
        if body.strip():
            try:
                spec = json.loads(body)
            except json.JSONDecodeError as exc:
                self._send_json(400, error_payload(f"invalid JSON: {exc}"))
                return
            if not isinstance(spec, Mapping) or set(spec) - {"layout"}:
                self._send_json(400, error_payload(
                    "body must be empty or {\"layout\": ...}"
                ))
                return
            if "layout" in spec:
                kwargs["layout"] = spec["layout"]
        try:
            info = rebalance(**kwargs)
        except (ReproError, ValueError) as exc:
            self._send_json(400, error_payload(str(exc)))
            return
        except Exception as exc:  # noqa: BLE001 - surfaced as a 500
            self._send_json(500, error_payload(f"{type(exc).__name__}: {exc}"))
            return
        self._send_json(200, {"status": "ok", "rebalance": info})

    @staticmethod
    def _parse_batch_body(body: bytes) -> List[Mapping[str, object]]:
        """JSONL (one object per non-empty line) or a single JSON array."""
        text = body.decode("utf-8", errors="replace").strip()
        if not text:
            raise ValueError("empty batch body; send JSONL or a JSON array")
        if text.startswith("["):
            try:
                specs = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON array: {exc}") from exc
            if not isinstance(specs, list):
                raise ValueError("batch body must be a JSON array or JSONL")
            return specs
        specs = []
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                specs.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {number}: invalid JSON ({exc})") from exc
        if not specs:
            raise ValueError("batch body contains no queries")
        return specs

    # ------------------------------------------------------------------ #
    # plumbing

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, error_payload(
                f"Content-Length must be between 0 and {MAX_BODY_BYTES}"
            ))
            return None
        return self.rfile.read(length)

    def _send_json(self, status: int, payload: Mapping[str, object]) -> None:
        self._send_text(status, json.dumps(payload), "application/json")

    def _send_shed(self, payload: Mapping[str, object]) -> None:
        """Answer a shed request: 429, shed body, ``Retry-After`` header.

        The ``Connection: close`` rule of :meth:`_send_text` (every status
        >= 400) is load-bearing here, not just tidy: the fast-shed path
        answers *without reading the request body*, and only closing the
        connection keeps those unread bytes from being parsed as the next
        request on a keep-alive connection.
        """
        retry_after_ms = payload.get("retry_after_ms", 0.0)
        seconds = max(1, int(round(float(retry_after_ms) / 1000.0)))
        self._extra_headers = [("Retry-After", str(seconds))]
        try:
            self._send_text(429, json.dumps(payload), "application/json")
        finally:
            self._extra_headers = []

    #: Extra response headers for the next ``_send_text`` call (the shed
    #: path's ``Retry-After``); reset after every send.
    _extra_headers: List[Tuple[str, str]] = []

    #: How long the fast-shed path lingers for a mid-write client's
    #: remaining body bytes before closing anyway.
    _drain_timeout_seconds = 2.0

    def _drain_unread_body(self) -> None:
        """Lingering close: absorb the body a fast-shed never waited for.

        The fast-shed 429 is sent before the request body is read.
        Closing the socket immediately would answer the client's still-
        arriving body bytes with a TCP RST -- and an RST can destroy the
        unread 429 sitting in the client's receive buffer, turning an
        explicit shed into a connection error.  Reading and discarding
        the declared body first -- bounded in size by the body cap and in
        time by a short socket deadline -- lets a mid-write client finish
        its send, read its 429, and observe a clean FIN.
        """
        try:
            remaining = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return
        remaining = min(remaining, MAX_BODY_BYTES)
        if remaining <= 0:
            return
        try:
            self.connection.settimeout(self._drain_timeout_seconds)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
        except OSError:
            pass

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in self._extra_headers:
            self.send_header(name, value)
        if status >= 400:
            # Error paths may not have drained the request body (wrong
            # method, unknown path, oversized Content-Length, and -- since
            # admission control landed -- a fast-shed 429 that deliberately
            # skips the read).  On a keep-alive connection the leftover
            # bytes would be parsed as the next request; closing keeps the
            # protocol in sync.  429 is covered by this same >= 400 rule.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Access logging, silenced by default (``quiet=False`` restores it)."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)


def _parse_dataset_spec(spec: object) -> Tuple[List, List]:
    """Resolve a ``POST /datasets`` body into (data objects, feature objects).

    Two body shapes are accepted:

    * ``{"path": "file.tsv"}`` -- a dataset file in the ``repro generate``
      text format, loaded server-side (the operational path: generate or
      copy the file next to the server, then swap);
    * ``{"data_objects": [{"oid", "x", "y"}, ...],
      "feature_objects": [{"oid", "x", "y", "keywords": [...]}, ...]}`` --
      inline object lists (the programmatic path, practical for tests and
      small datasets).

    Raises:
        ValueError: for a structurally invalid body, an unreadable or
            malformed dataset file, or a dataset without data objects.
    """
    from repro.datagen.io import load_dataset
    from repro.exceptions import DatasetFormatError
    from repro.model.objects import DataObject, FeatureObject

    if not isinstance(spec, Mapping):
        raise ValueError(f"body must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - {"path", "data_objects", "feature_objects"}
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)}; expected 'path' or "
            "'data_objects' + 'feature_objects'"
        )
    if "path" in spec:
        if "data_objects" in spec or "feature_objects" in spec:
            raise ValueError("'path' and inline object lists are mutually exclusive")
        path = spec["path"]
        if not isinstance(path, str) or not path:
            raise ValueError(f"'path' must be a non-empty string, got {path!r}")
        try:
            data, features = load_dataset(path)
        except OSError as exc:
            raise ValueError(f"cannot read dataset file: {exc}") from exc
        except DatasetFormatError as exc:
            raise ValueError(f"malformed dataset file: {exc}") from exc
    else:
        raw_data = spec.get("data_objects")
        raw_features = spec.get("feature_objects", [])
        if not isinstance(raw_data, list) or not isinstance(raw_features, list):
            raise ValueError(
                "'data_objects' and 'feature_objects' must be lists of objects"
            )
        try:
            data = [
                DataObject(oid=str(obj["oid"]), x=float(obj["x"]), y=float(obj["y"]))
                for obj in raw_data
            ]
            features = [
                FeatureObject(
                    oid=str(obj["oid"]),
                    x=float(obj["x"]),
                    y=float(obj["y"]),
                    keywords=frozenset(
                        str(word) for word in obj.get("keywords", [])
                    ),
                )
                for obj in raw_features
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed inline object: {exc}") from exc
    if not data:
        raise ValueError("dataset contains no data objects")
    return data, features


def _parse_objects_spec(
    spec: object, allow_empty: bool = False
) -> Tuple[List, List, List, List]:
    """Resolve a ``POST /objects`` body into append lists and delete oids.

    Body shape (both sections optional, but not both absent unless
    ``allow_empty`` -- an epoch-tagged router push may carry no work)::

        {"append": {"data_objects": [{"oid", "x", "y"}, ...],
                    "feature_objects": [{"oid", "x", "y", "keywords"}, ...]},
         "delete": {"data_oids": ["d1", ...], "feature_oids": ["f1", ...]}}

    Returns:
        ``(append_data, append_features, delete_data_oids,
        delete_feature_oids)``.

    Raises:
        ValueError: for a structurally invalid body or an empty update.
    """
    from repro.model.objects import DataObject, FeatureObject

    if not isinstance(spec, Mapping):
        raise ValueError(f"body must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - {"append", "delete"}
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)}; expected 'append' and/or "
            "'delete'"
        )
    append = spec.get("append", {})
    delete = spec.get("delete", {})
    if not isinstance(append, Mapping) or not isinstance(delete, Mapping):
        raise ValueError("'append' and 'delete' must be JSON objects")
    unknown = set(append) - {"data_objects", "feature_objects"}
    if unknown:
        raise ValueError(
            f"unknown append field(s) {sorted(unknown)}; expected "
            "'data_objects' and/or 'feature_objects'"
        )
    unknown = set(delete) - {"data_oids", "feature_oids"}
    if unknown:
        raise ValueError(
            f"unknown delete field(s) {sorted(unknown)}; expected "
            "'data_oids' and/or 'feature_oids'"
        )
    raw_data = append.get("data_objects", [])
    raw_features = append.get("feature_objects", [])
    raw_data_oids = delete.get("data_oids", [])
    raw_feature_oids = delete.get("feature_oids", [])
    for name, value in (
        ("append.data_objects", raw_data),
        ("append.feature_objects", raw_features),
        ("delete.data_oids", raw_data_oids),
        ("delete.feature_oids", raw_feature_oids),
    ):
        if not isinstance(value, list):
            raise ValueError(f"'{name}' must be a list")
    try:
        append_data = [
            DataObject(oid=str(obj["oid"]), x=float(obj["x"]), y=float(obj["y"]))
            for obj in raw_data
        ]
        append_features = [
            FeatureObject(
                oid=str(obj["oid"]),
                x=float(obj["x"]),
                y=float(obj["y"]),
                keywords=frozenset(str(word) for word in obj.get("keywords", [])),
            )
            for obj in raw_features
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed inline object: {exc}") from exc
    delete_data = [str(oid) for oid in raw_data_oids]
    delete_features = [str(oid) for oid in raw_feature_oids]
    if not allow_empty and not (
        append_data or append_features or delete_data or delete_features
    ):
        raise ValueError("empty update: nothing to append or delete")
    return append_data, append_features, delete_data, delete_features


def make_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> QueryHTTPServer:
    """Bind (but do not start) an HTTP server for ``service``.

    The caller owns both lifecycles: start the service, then
    ``serve_forever()`` (or drive ``handle_request()`` in tests), and shut
    both down afterwards.  ``port=0`` binds an ephemeral port, available as
    :attr:`QueryHTTPServer.port`.
    """
    return QueryHTTPServer((host, port), service, quiet=quiet)


__all__ = [
    "MAX_BODY_BYTES",
    "QueryHTTPServer",
    "make_server",
]
