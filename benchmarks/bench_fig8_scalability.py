"""Figure 8 — scalability with dataset size (uniform data).

The paper doubles the dataset from 64M to 512M entries and reports that pSPQ
scales linearly while the early-termination algorithms grow much more slowly,
widening the gap at larger sizes.  The benchmark times end-to-end execution at
a x2 / x4 size progression for each algorithm.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import _uniform_spec
from benchmarks.conftest import execute

ALGORITHMS = ("pspq", "espq-len", "espq-sco")
SIZES = (1_000, 2_000, 4_000, 8_000)


@pytest.fixture(scope="module", params=SIZES)
def sized_spec(request):
    return request.param, _uniform_spec(request.param)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_dataset_size(benchmark, sized_spec, algorithm):
    size, spec = sized_spec
    benchmark.extra_info["dataset_size"] = size
    result = benchmark(execute, spec, algorithm)
    assert len(result) <= spec.k
