"""Textual-relevance substrate.

Implements the non-spatial score of the paper (Definition 1, Jaccard
similarity between the query keyword set and a feature object's keyword set)
and the length-based upper bound used by the ``eSPQlen`` early-termination
algorithm (Equation 1).
"""

from repro.text.similarity import (
    jaccard,
    jaccard_upper_bound,
    non_spatial_score,
    upper_bound_for_length,
)
from repro.text.tokenizer import normalize_keyword, tokenize
from repro.text.vocabulary import Vocabulary
from repro.text.inverted_index import InvertedIndex, PositionalInvertedIndex

__all__ = [
    "jaccard",
    "non_spatial_score",
    "jaccard_upper_bound",
    "upper_bound_for_length",
    "tokenize",
    "normalize_keyword",
    "Vocabulary",
    "InvertedIndex",
    "PositionalInvertedIndex",
]
