"""Unit tests for the centralized oracle (exhaustive and grid-accelerated)."""

from __future__ import annotations

import random

import pytest

from repro.core.centralized import CentralizedSPQ, dataset_extent
from repro.model.objects import DataObject, FeatureObject
from repro.model.query import SpatialPreferenceQuery


class TestDatasetExtent:
    def test_extent_covers_all_points(self):
        data = [DataObject("p1", -5.0, 2.0), DataObject("p2", 7.0, 9.0)]
        features = [FeatureObject("f1", 0.0, -3.0, {"a"})]
        extent = dataset_extent(data, features)
        for obj in data + features:
            assert extent.contains(obj.x, obj.y)

    def test_empty_datasets_get_unit_extent(self):
        extent = dataset_extent([], [])
        assert extent.width > 0 and extent.height > 0

    def test_degenerate_extent_is_padded(self):
        data = [DataObject("p1", 1.0, 5.0), DataObject("p2", 1.0, 7.0)]
        extent = dataset_extent(data, [])
        assert extent.width > 0
        assert extent.height > 0


class TestCentralizedVariantsAgree:
    def test_grid_variant_matches_exhaustive_on_random_data(self):
        rng = random.Random(17)
        data = [DataObject(f"p{i}", rng.uniform(0, 50), rng.uniform(0, 50)) for i in range(150)]
        vocabulary = [f"w{i}" for i in range(20)]
        features = [
            FeatureObject(
                f"f{i}",
                rng.uniform(0, 50),
                rng.uniform(0, 50),
                frozenset(rng.sample(vocabulary, rng.randint(1, 6))),
            )
            for i in range(150)
        ]
        oracle = CentralizedSPQ(data, features)
        for keywords in [{"w0"}, {"w1", "w2", "w3"}, {"w5", "w19"}]:
            query = SpatialPreferenceQuery.create(k=7, radius=4.0, keywords=keywords)
            exhaustive = oracle.evaluate_exhaustive(query)
            accelerated = oracle.evaluate(query)
            assert accelerated.scores() == pytest.approx(exhaustive.scores())

    def test_grid_variant_with_explicit_bucket_size(self):
        data = [DataObject("p", 1.0, 1.0)]
        features = [FeatureObject("f", 1.5, 1.0, {"a"})]
        query = SpatialPreferenceQuery.create(k=1, radius=1.0, keywords={"a"})
        result = CentralizedSPQ(data, features).evaluate(query, bucket_size=0.25)
        assert result.scores() == [pytest.approx(1.0)]

    def test_stats_report_algorithm_name(self):
        oracle = CentralizedSPQ([], [])
        query = SpatialPreferenceQuery.create(k=1, radius=1.0, keywords={"a"})
        assert oracle.evaluate(query).stats["algorithm"] == "centralized-grid"
        assert (
            oracle.evaluate_exhaustive(query).stats["algorithm"] == "centralized-exhaustive"
        )

    def test_grid_variant_examines_fewer_pairs(self):
        rng = random.Random(3)
        data = [DataObject(f"p{i}", rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(300)]
        features = [
            FeatureObject(f"f{i}", rng.uniform(0, 100), rng.uniform(0, 100), {"kw"})
            for i in range(300)
        ]
        query = SpatialPreferenceQuery.create(k=5, radius=2.0, keywords={"kw"})
        oracle = CentralizedSPQ(data, features)
        exhaustive = oracle.evaluate_exhaustive(query)
        accelerated = oracle.evaluate(query)
        assert (
            accelerated.stats["score_computations"] < exhaustive.stats["score_computations"]
        )

    def test_zero_score_objects_fill_topk(self):
        """Every data object is a potential result: with no relevant feature
        nearby the top-k is filled with zero-score objects."""
        data = [DataObject(f"p{i}", float(i), 0.0) for i in range(5)]
        features = [FeatureObject("f", 100.0, 100.0, {"a"})]
        query = SpatialPreferenceQuery.create(k=3, radius=1.0, keywords={"a"})
        result = CentralizedSPQ(data, features).evaluate_exhaustive(query)
        assert len(result) == 3
        assert result.scores() == [0.0, 0.0, 0.0]
