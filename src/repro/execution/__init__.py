"""Pluggable execution backends for the local MapReduce runtime.

The :class:`~repro.mapreduce.runtime.LocalJobRunner` orchestrates a job --
splitting the input, merging shuffle buckets, aggregating counters and
reports -- but delegates the actual *task execution* to an
:class:`~repro.execution.base.ExecutionBackend`.  Three backends ship with
the package:

* :class:`~repro.execution.serial.SerialBackend` -- runs every map split and
  reduce partition inline, in task order.  Fully deterministic; the default.
* :class:`~repro.execution.thread.ThreadBackend` -- runs tasks on a thread
  pool.  Cheap to start and shares memory with the caller, but the GIL caps
  CPU-bound work at roughly one core; useful mostly for I/O-heavy jobs and
  as a stepping stone to the process backend.
* :class:`~repro.execution.process.ProcessBackend` -- runs tasks in a
  ``multiprocessing`` pool with picklable task payloads and chunked shuffle
  serialization.  True multi-core execution; results, counters and reports
  are bit-for-bit identical to serial execution.

All backends honour the same contract (see :class:`ExecutionBackend`):
results come back in task-index order, so counter aggregation is
deterministic no matter how tasks were scheduled.

The default backend is selected by :func:`resolve_backend_spec`:
an explicit name wins, otherwise the ``REPRO_BACKEND`` environment variable,
otherwise ``"serial"``.  ``REPRO_WORKERS`` likewise seeds the default worker
count for the parallel backends.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.exceptions import JobConfigurationError
from repro.execution.base import ExecutionBackend, ReduceTask
from repro.execution.process import ProcessBackend
from repro.execution.serial import SerialBackend
from repro.execution.tasks import (
    MapTaskResult,
    ReduceTaskReport,
    run_map_task,
    run_reduce_task,
)
from repro.execution.thread import ThreadBackend

#: Backend names accepted everywhere a backend can be chosen.
BACKEND_NAMES = ("serial", "thread", "process")

#: Environment variables seeding the *default* backend/worker count.  An
#: explicit choice (EngineConfig, CLI flag, constructor argument) always wins.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_WORKERS"

_BACKEND_CLASSES = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def default_worker_count() -> int:
    """Default worker count of the parallel backends (capped CPU count)."""
    return min(8, os.cpu_count() or 1)


def validate_backend_spec(name: str, workers: int) -> None:
    """Reject invalid backend/worker combinations.

    Raises:
        JobConfigurationError: for an unknown backend name, a non-positive
            worker count, or ``serial`` with more than one worker.
    """
    if name not in BACKEND_NAMES:
        raise JobConfigurationError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    if workers < 1:
        raise JobConfigurationError(f"workers must be >= 1, got {workers}")
    if name == "serial" and workers != 1:
        raise JobConfigurationError(
            "the serial backend is single-worker by definition; "
            "use --backend thread or --backend process with --workers N"
        )


def resolve_backend_spec(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    fallback_thread_workers: int = 1,
) -> Tuple[str, int]:
    """Resolve an explicit/env/legacy backend choice to ``(name, workers)``.

    Precedence for the name: explicit ``name`` > legacy
    ``fallback_thread_workers > 1`` (the old ``max_workers`` thread knob) >
    ``$REPRO_BACKEND`` > ``"serial"``.  Precedence for the worker count:
    explicit ``workers`` > legacy thread knob > ``$REPRO_WORKERS`` > backend
    default (1 for serial, :func:`default_worker_count` otherwise).

    Raises:
        JobConfigurationError: if the resolved combination is invalid.
    """
    if name is None:
        if fallback_thread_workers > 1:
            name = "thread"
            if workers is None:
                workers = fallback_thread_workers
        else:
            name = os.environ.get(ENV_BACKEND) or "serial"
    if workers is None:
        env_workers = os.environ.get(ENV_WORKERS)
        if name == "serial":
            workers = 1
        elif env_workers:
            try:
                workers = int(env_workers)
            except ValueError as exc:
                raise JobConfigurationError(
                    f"{ENV_WORKERS} must be an integer, got {env_workers!r}"
                ) from exc
        else:
            workers = default_worker_count()
    validate_backend_spec(name, workers)
    return name, workers


def create_backend(
    name: Optional[str] = None,
    workers: Optional[int] = None,
    fallback_thread_workers: int = 1,
) -> ExecutionBackend:
    """Instantiate a backend from a (possibly partial) specification."""
    resolved_name, resolved_workers = resolve_backend_spec(
        name, workers, fallback_thread_workers
    )
    backend_class = _BACKEND_CLASSES[resolved_name]
    if resolved_name == "serial":
        return backend_class()
    return backend_class(workers=resolved_workers)


def execution_info(
    name: Optional[str] = None, workers: Optional[int] = None
) -> Dict[str, object]:
    """``{"backend": ..., "workers": ...}`` for benchmark/report artifacts."""
    resolved_name, resolved_workers = resolve_backend_spec(name, workers)
    return {"backend": resolved_name, "workers": resolved_workers}


__all__ = [
    "BACKEND_NAMES",
    "ENV_BACKEND",
    "ENV_WORKERS",
    "ExecutionBackend",
    "MapTaskResult",
    "ProcessBackend",
    "ReduceTask",
    "ReduceTaskReport",
    "SerialBackend",
    "ThreadBackend",
    "create_backend",
    "default_worker_count",
    "execution_info",
    "resolve_backend_spec",
    "run_map_task",
    "run_reduce_task",
    "validate_backend_spec",
]
