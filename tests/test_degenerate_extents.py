"""Degenerate spatial extents: collinear or identical points.

A dataset whose points all share one x (or y, or both) coordinate has a
zero-width/zero-height bounding box, which a :class:`UniformGrid` cannot
tile.  The engine handles this in two documented ways:

* **implicit extent** (the normal case): :func:`dataset_extent` pads the
  degenerate axis, so queries run normally and match the oracle;
* **explicit extent**: passing a degenerate extent to :class:`SPQEngine`
  raises a clear :class:`InvalidQueryError` at construction time instead of
  an obscure grid failure at query time.
"""

from __future__ import annotations

import pytest

from repro.core.centralized import CentralizedSPQ, dataset_extent
from repro.core.engine import SPQEngine
from repro.exceptions import InvalidGridError, InvalidQueryError
from repro.model.objects import DataObject, FeatureObject
from repro.model.query import SpatialPreferenceQuery
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import UniformGrid

ALGORITHMS = ("pspq", "espq-len", "espq-sco", "auto")


def vertical_line_dataset():
    """All points on x = 3.0 (zero-width bounding box)."""
    data = [DataObject(f"p{i}", 3.0, float(i)) for i in range(6)]
    features = [
        FeatureObject(f"f{i}", 3.0, i + 0.5, frozenset({"cafe", f"extra{i}"}))
        for i in range(6)
    ]
    return data, features


def single_point_dataset():
    """Every object at the exact same coordinate (zero-area bounding box)."""
    data = [DataObject(f"p{i}", 1.0, 2.0) for i in range(4)]
    features = [
        FeatureObject("f0", 1.0, 2.0, frozenset({"cafe"})),
        FeatureObject("f1", 1.0, 2.0, frozenset({"cafe", "bar"})),
    ]
    return data, features


class TestUniformGridRejectsDegenerateExtents:
    @pytest.mark.parametrize(
        "box",
        [
            BoundingBox(0.0, 0.0, 0.0, 5.0),   # zero width
            BoundingBox(0.0, 0.0, 5.0, 0.0),   # zero height
            BoundingBox(2.0, 3.0, 2.0, 3.0),   # a single point
        ],
    )
    def test_zero_extent_raises(self, box):
        with pytest.raises(InvalidGridError, match="positive width and height"):
            UniformGrid.square(box, 4)


class TestDatasetExtentPadding:
    def test_vertical_line_is_padded(self):
        data, features = vertical_line_dataset()
        extent = dataset_extent(data, features)
        assert extent.width > 0
        assert extent.height > 0

    def test_single_point_is_padded(self):
        data, features = single_point_dataset()
        extent = dataset_extent(data, features)
        assert extent.width > 0
        assert extent.height > 0


class TestEngineOnDegenerateDatasets:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_collinear_dataset_matches_oracle(self, algorithm):
        data, features = vertical_line_dataset()
        engine = SPQEngine(data, features)
        query = SpatialPreferenceQuery.create(k=3, radius=1.0, keywords={"cafe"})
        result = engine.execute(query, algorithm=algorithm, grid_size=4)
        oracle = CentralizedSPQ(data, features).evaluate_exhaustive(query)
        oracle_positive = [s for s in oracle.scores() if s > 0]
        assert result.scores() == pytest.approx(oracle_positive[: query.k])

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_identical_points_match_oracle(self, algorithm):
        data, features = single_point_dataset()
        engine = SPQEngine(data, features)
        query = SpatialPreferenceQuery.create(k=4, radius=0.5, keywords={"cafe"})
        result = engine.execute(query, algorithm=algorithm, grid_size=3)
        # All four data objects sit on both features; the best feature is f0
        # (Jaccard 1.0 against {cafe} is f0's exact keyword set).
        assert len(result) == 4
        assert result.scores() == pytest.approx([1.0, 1.0, 1.0, 1.0])
        oracle = CentralizedSPQ(data, features).evaluate_exhaustive(query)
        assert result.scores() == pytest.approx(oracle.scores())

    def test_identical_points_zero_radius(self):
        """radius 0: objects at the exact feature position still match."""
        data, features = single_point_dataset()
        engine = SPQEngine(data, features)
        query = SpatialPreferenceQuery.create(k=2, radius=0.0, keywords={"bar"})
        result = engine.execute(query, algorithm="espq-sco", grid_size=2)
        assert result.scores() == pytest.approx([0.5, 0.5])

    def test_batch_on_degenerate_dataset(self):
        data, features = vertical_line_dataset()
        engine = SPQEngine(data, features)
        query = SpatialPreferenceQuery.create(k=2, radius=1.0, keywords={"cafe"})
        sequential = engine.execute(query, algorithm="espq-len", grid_size=4)
        batched = engine.execute_many([query], algorithm="espq-len", grid_size=4)[0]
        assert batched.object_ids() == sequential.object_ids()
        assert batched.scores() == sequential.scores()


class TestExplicitDegenerateExtentRejected:
    @pytest.mark.parametrize(
        "box",
        [
            BoundingBox(0.0, 0.0, 0.0, 5.0),
            BoundingBox(0.0, 0.0, 5.0, 0.0),
            BoundingBox(1.0, 1.0, 1.0, 1.0),
        ],
    )
    def test_constructor_raises_clear_error(self, box):
        data, features = vertical_line_dataset()
        with pytest.raises(InvalidQueryError, match="degenerate"):
            SPQEngine(data, features, extent=box)

    def test_valid_explicit_extent_still_accepted(self):
        data, features = vertical_line_dataset()
        engine = SPQEngine(
            data, features, extent=BoundingBox(0.0, 0.0, 10.0, 10.0)
        )
        query = SpatialPreferenceQuery.create(k=1, radius=1.0, keywords={"cafe"})
        assert len(engine.execute(query, algorithm="pspq", grid_size=4)) >= 1
