"""Tests for ``SPQEngine.execute_many`` and the engine's index lifecycle."""

from __future__ import annotations

import pytest

from repro.core.engine import SPQEngine
from repro.exceptions import InvalidQueryError, ResultIntegrityError
from repro.index.planner import BatchQuery
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import JobResult
from repro.model.query import SpatialPreferenceQuery

DISTRIBUTED = ("pspq", "espq-len", "espq-sco")


def _workload(keyword_sets, k=5, radius=4.0, repeats=3):
    return [
        SpatialPreferenceQuery.create(k=k, radius=radius, keywords=keywords)
        for _ in range(repeats)
        for keywords in keyword_sets
    ]


@pytest.fixture(scope="module")
def uniform_engine_data(small_uniform_dataset_module):
    return small_uniform_dataset_module


@pytest.fixture(scope="module")
def small_uniform_dataset_module():
    from repro.datagen.synthetic import SyntheticDatasetConfig, generate_uniform

    return generate_uniform(SyntheticDatasetConfig(num_objects=1_000, seed=101))


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("algorithm", DISTRIBUTED)
    def test_identical_results_per_algorithm(self, uniform_engine_data, algorithm):
        data, features = uniform_engine_data
        queries = _workload([
            {"w0001", "w0042"}, {"w0100"}, {"w0500", "w0501"},
        ])
        engine = SPQEngine(data, features)
        sequential = [
            engine.execute(query, algorithm=algorithm, grid_size=8)
            for query in queries
        ]
        batch_engine = SPQEngine(data, features)
        batch = batch_engine.execute_many(queries, algorithm=algorithm, grid_size=8)
        assert len(batch) == len(sequential)
        for seq, bat in zip(sequential, batch):
            assert seq.object_ids() == bat.object_ids()
            assert seq.scores() == bat.scores()

    def test_paper_example_through_batch(
        self, paper_data_objects, paper_feature_objects, paper_query
    ):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        sequential = engine.execute(paper_query, algorithm="espq-sco", grid_size=3)
        [batch] = engine.execute_many([paper_query], algorithm="espq-sco", grid_size=3)
        assert batch.object_ids() == sequential.object_ids()
        assert batch.scores() == sequential.scores()

    def test_influence_mode_via_pspq(self, uniform_engine_data):
        data, features = uniform_engine_data
        query = SpatialPreferenceQuery.create(k=3, radius=5.0, keywords={"w0001"})
        engine = SPQEngine(data, features)
        sequential = engine.execute(
            query, algorithm="pspq", grid_size=6, score_mode="influence"
        )
        [batch] = engine.execute_many(
            [query], algorithm="pspq", grid_size=6, score_mode="influence"
        )
        assert batch.object_ids() == sequential.object_ids()
        assert batch.scores() == pytest.approx(sequential.scores())

    def test_mixed_grid_sizes_and_algorithms_keep_input_order(self, uniform_engine_data):
        data, features = uniform_engine_data
        query_a = SpatialPreferenceQuery.create(k=2, radius=4.0, keywords={"w0001"})
        query_b = SpatialPreferenceQuery.create(k=2, radius=4.0, keywords={"w0100"})
        items = [
            BatchQuery(query_a, grid_size=10),
            BatchQuery(query_b, algorithm="pspq"),
            query_a,
            BatchQuery(query_b, grid_size=10, algorithm="espq-len"),
        ]
        engine = SPQEngine(data, features)
        results = engine.execute_many(items, algorithm="espq-sco", grid_size=6)
        assert len(results) == 4
        expected = [
            engine.execute(query_a, algorithm="espq-sco", grid_size=10),
            engine.execute(query_b, algorithm="pspq", grid_size=6),
            engine.execute(query_a, algorithm="espq-sco", grid_size=6),
            engine.execute(query_b, algorithm="espq-len", grid_size=10),
        ]
        for got, want in zip(results, expected):
            assert got.object_ids() == want.object_ids()
            assert got.scores() == want.scores()
        assert results[0].stats["grid_size"] == 10
        assert results[1].stats["algorithm"] == "pSPQ"

    def test_centralized_passthrough(self, paper_data_objects, paper_feature_objects, paper_query):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        sequential = engine.execute(paper_query, algorithm="centralized")
        [batch] = engine.execute_many([paper_query], algorithm="centralized")
        assert batch.object_ids() == sequential.object_ids()

    def test_empty_batch(self, paper_data_objects, paper_feature_objects):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        assert engine.execute_many([]) == []

    def test_validation_happens_before_execution(
        self, paper_data_objects, paper_feature_objects, paper_query
    ):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        items = [paper_query, BatchQuery(paper_query, algorithm="bogus")]
        with pytest.raises(InvalidQueryError):
            engine.execute_many(items)
        # Nothing ran: the index cache was never populated.
        assert engine.index_cache_stats["misses"] == 0

    def test_pspq_bad_score_mode_rejected_up_front(
        self, paper_data_objects, paper_feature_objects, paper_query
    ):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        items = [paper_query, BatchQuery(paper_query, algorithm="pspq", score_mode="bogus")]
        with pytest.raises(InvalidQueryError, match="pspq"):
            engine.execute_many(items)
        assert engine.index_cache_stats["misses"] == 0


class TestStaleDatasetGuards:
    def test_reassigning_data_objects_refreshes_merge_lookup(self, uniform_engine_data):
        from repro.model.objects import DataObject

        data, features = uniform_engine_data
        query = SpatialPreferenceQuery.create(k=3, radius=4.0, keywords={"w0001"})
        engine = SPQEngine(data, features)
        before = engine.execute(query, grid_size=8)
        # Same oids, moved coordinates: the merge lookup must not serve the
        # old instances after the attribute is reassigned.
        moved = [DataObject(obj.oid, obj.x + 1.0, obj.y) for obj in data]
        engine.data_objects = moved
        after = engine.execute(query, grid_size=8)
        lookup = {obj.oid: obj for obj in moved}
        for entry in after:
            assert entry.obj is lookup[entry.obj.oid]
        del before


class TestIndexLifecycle:
    def test_cache_hits_across_batch(self, uniform_engine_data):
        data, features = uniform_engine_data
        queries = _workload([{"w0001"}, {"w0100"}], repeats=2)
        engine = SPQEngine(data, features)
        engine.execute_many(queries, grid_size=8)
        stats = engine.index_cache_stats
        assert stats["misses"] == 1
        assert stats["hits"] == len(queries) - 1

    def test_index_reused_across_calls(self, uniform_engine_data):
        data, features = uniform_engine_data
        query = SpatialPreferenceQuery.create(k=2, radius=4.0, keywords={"w0001"})
        engine = SPQEngine(data, features)
        engine.execute_many([query], grid_size=8)
        engine.execute_many([query], grid_size=8)
        assert engine.index_cache_stats["misses"] == 1
        assert engine.index_cache_stats["hits"] == 1

    def test_invalidate_indexes_bumps_version_and_clears(self, uniform_engine_data):
        data, features = uniform_engine_data
        query = SpatialPreferenceQuery.create(k=2, radius=4.0, keywords={"w0001"})
        engine = SPQEngine(data, features)
        engine.execute_many([query], grid_size=8)
        version = engine.dataset_version
        engine.invalidate_indexes()
        assert engine.dataset_version == version + 1
        engine.execute_many([query], grid_size=8)
        assert engine.index_cache_stats["misses"] == 2

    def test_set_datasets_invalidates_and_changes_results(self, uniform_engine_data):
        data, features = uniform_engine_data
        query = SpatialPreferenceQuery.create(k=3, radius=4.0, keywords={"w0001"})
        engine = SPQEngine(data, features)
        [before] = engine.execute_many([query], grid_size=8)

        half = len(data) // 2
        engine.set_datasets(data[:half], features[:half])
        [after] = engine.execute_many([query], grid_size=8)
        fresh = SPQEngine(data[:half], features[:half])
        [expected] = fresh.execute_many([query], grid_size=8)
        assert after.object_ids() == expected.object_ids()
        assert after.scores() == expected.scores()
        # The stale index must not have served the shrunk dataset.
        assert engine.index_cache_stats["misses"] == 2
        del before

    def test_stats_carry_index_info(self, uniform_engine_data):
        data, features = uniform_engine_data
        queries = _workload([{"w0001"}], repeats=2)
        engine = SPQEngine(data, features)
        results = engine.execute_many(queries, grid_size=8)
        assert results[0].stats["index"]["index_cache_hit"] is False
        assert results[1].stats["index"]["index_cache_hit"] is True
        assert results[1].stats["index"]["radius_cache_hit"] is True
        assert results[0].stats["features_pruned"] > 0

    def test_pruned_counter_matches_sequential(self, uniform_engine_data):
        data, features = uniform_engine_data
        query = SpatialPreferenceQuery.create(k=2, radius=4.0, keywords={"w0001"})
        engine = SPQEngine(data, features)
        sequential = engine.execute(query, algorithm="espq-sco", grid_size=8)
        [batch] = engine.execute_many([query], algorithm="espq-sco", grid_size=8)
        assert batch.stats["features_pruned"] == sequential.stats["features_pruned"]
        assert batch.stats["feature_duplicates"] == sequential.stats["feature_duplicates"]


class TestMergeIntegrity:
    def _fake_result(self, outputs):
        return JobResult(
            job_name="fake",
            outputs=outputs,
            counters=Counters(),
            reduce_reports=[],
            num_map_tasks=1,
            num_reduce_tasks=1,
        )

    def test_unknown_oid_raises(self, paper_data_objects, paper_feature_objects, paper_query):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        fake = self._fake_result([(1, "no-such-object", 0.5)])
        with pytest.raises(ResultIntegrityError, match="no-such-object"):
            engine._merge(fake, paper_query)

    def test_known_oids_merge_normally(
        self, paper_data_objects, paper_feature_objects, paper_query
    ):
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        fake = self._fake_result([(1, "p1", 0.5), (2, "p2", 0.7)])
        entries = engine._merge(fake, paper_query)
        assert [entry.obj.oid for entry in entries] == ["p2"]  # k == 1
