"""Batch-vs-sequential speedup on a repeated-query workload.

Demonstrates the value of the reusable index layer: a 20-query workload
drawn from a handful of repeated keyword sets is executed twice --

* **sequential**: one ``SPQEngine.execute`` call per query (the per-query
  path rebuilds the grid, re-locates every data object and re-scans every
  feature for keyword pruning each time), and
* **batch**: one ``SPQEngine.execute_many`` call (index built once per grid
  size, data-object shuffle preloaded, per-radius duplication lists cached,
  feature candidates served by the inverted index).

The script verifies the two paths return identical results, reports the
wall-clock speedup per algorithm, and writes a JSON summary.  Run it as::

    PYTHONPATH=src python benchmarks/bench_batch_reuse.py
    python benchmarks/bench_batch_reuse.py --check   # exit 1 if < --min-speedup

With the defaults (30,000 objects, grid 16, single-keyword queries over 5
repeated keyword sets) the default algorithm clears a 2x speedup comfortably.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.core.engine import SPQEngine
from repro.datagen.synthetic import SyntheticDatasetConfig, generate_uniform
from repro.execution import execution_info
from repro.model.query import SpatialPreferenceQuery

DEFAULT_ALGORITHMS = ("espq-sco", "espq-len", "pspq")


def build_workload(
    num_queries: int, distinct_keyword_sets: int, keywords_per_query: int,
    radius: float, k: int, seed: int,
) -> List[SpatialPreferenceQuery]:
    """Repeated-keyword workload: ``num_queries`` queries cycling through a
    small pool of keyword sets, as produced by many users asking popular
    queries."""
    rng = random.Random(seed)
    pool = [
        frozenset(f"w{rng.randrange(1000):04d}" for _ in range(keywords_per_query))
        for _ in range(distinct_keyword_sets)
    ]
    return [
        SpatialPreferenceQuery.create(k=k, radius=radius, keywords=pool[i % len(pool)])
        for i in range(num_queries)
    ]


def run_once(data, features, queries, algorithm: str, grid_size: int) -> Dict[str, object]:
    """Time the sequential and batch paths on fresh engines; verify equality."""
    sequential_engine = SPQEngine(data, features)
    started = time.perf_counter()
    sequential = [
        sequential_engine.execute(query, algorithm=algorithm, grid_size=grid_size)
        for query in queries
    ]
    sequential_seconds = time.perf_counter() - started

    batch_engine = SPQEngine(data, features)
    started = time.perf_counter()
    batch = batch_engine.execute_many(queries, algorithm=algorithm, grid_size=grid_size)
    batch_seconds = time.perf_counter() - started

    identical = all(
        s.object_ids() == b.object_ids() and s.scores() == b.scores()
        for s, b in zip(sequential, batch)
    )
    return {
        "algorithm": algorithm,
        "num_queries": len(queries),
        "sequential_seconds": sequential_seconds,
        "batch_seconds": batch_seconds,
        "speedup": sequential_seconds / batch_seconds if batch_seconds else float("inf"),
        "identical_results": identical,
        "index_cache": batch_engine.index_cache_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--objects", type=int, default=30_000)
    parser.add_argument("--queries", type=int, default=20)
    parser.add_argument("--keyword-sets", type=int, default=5,
                        help="distinct keyword sets the workload cycles through")
    parser.add_argument("--keywords-per-query", type=int, default=1)
    parser.add_argument("--radius", type=float, default=2.0)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--grid-size", type=int, default=16)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--algorithms", default=",".join(DEFAULT_ALGORITHMS),
                        help="comma-separated list to benchmark")
    parser.add_argument("--json", default=None, help="write the summary JSON here")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the default algorithm reaches --min-speedup "
                             "and all results are identical")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    config = SyntheticDatasetConfig(num_objects=args.objects, seed=args.seed)
    data, features = generate_uniform(config)
    queries = build_workload(
        args.queries, args.keyword_sets, args.keywords_per_query,
        args.radius, args.k, args.seed,
    )

    algorithms = [name for name in args.algorithms.split(",") if name]
    runs = []
    print(f"workload: {len(queries)} queries over {args.keyword_sets} keyword sets, "
          f"{args.objects} objects, grid {args.grid_size}")
    print(f"{'algorithm':<10} {'sequential':>11} {'batch':>8} {'speedup':>8}  identical")
    for algorithm in algorithms:
        run = run_once(data, features, queries, algorithm, args.grid_size)
        runs.append(run)
        print(f"{algorithm:<10} {run['sequential_seconds']:>10.2f}s "
              f"{run['batch_seconds']:>7.2f}s {run['speedup']:>7.2f}x  "
              f"{run['identical_results']}")

    summary = {
        "execution": execution_info(),
        "workload": {
            "objects": args.objects,
            "queries": args.queries,
            "keyword_sets": args.keyword_sets,
            "keywords_per_query": args.keywords_per_query,
            "radius": args.radius,
            "k": args.k,
            "grid_size": args.grid_size,
            "seed": args.seed,
        },
        "runs": runs,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"wrote {args.json}")

    if args.check:
        primary = runs[0]
        if not all(run["identical_results"] for run in runs):
            print("FAIL: batch results differ from sequential results", file=sys.stderr)
            return 1
        if primary["speedup"] < args.min_speedup:
            print(
                f"FAIL: {primary['algorithm']} speedup {primary['speedup']:.2f}x "
                f"below required {args.min_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: {primary['algorithm']} speedup {primary['speedup']:.2f}x "
              f">= {args.min_speedup}x, all results identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
