"""Scatter-gather over process-isolated shard nodes, with failover.

:class:`ClusterRouter` is the cluster-mode counterpart of
:class:`~repro.sharding.router.ShardRouter`: it duck-types
:class:`~repro.server.service.QueryService` (``submit``, ``submit_many``,
``stats``, ``uptime_seconds``, ``swap_datasets``, context manager) so
:func:`repro.server.http.make_server` serves it unchanged -- but where the
shard router calls N in-process services, this router speaks the existing
JSON-over-HTTP protocol to N *node endpoints*, each a
:class:`~repro.cluster.node.ShardNodeService` in its own OS process
(``repro serve --cluster N``).  What that buys over ``--shards``:

* **no single-process ceiling** -- every shard has its own interpreter
  (its own GIL) and its own crash domain;
* **liveness tracking** -- a heartbeat thread probes every node's
  ``GET /heartbeat`` on a fixed cadence; consecutive misses or a liveness
  timeout mark a node dead, one success re-admits it
  (:mod:`repro.cluster.membership`);
* **failover** -- each scattered sub-request carries a deadline and one
  retry: when the primary replica of a shard fails (connection refused,
  reset, timeout, 5xx), the request is retried on the next live replica of
  the *same extent slice*.  Replicas exist because ``--replication R``
  runs R node processes per shard, each slicing the same snapshot with the
  same Lemma-1 :func:`~repro.sharding.partition.partition_datasets` call,
  so any replica's answer is bit-for-bit any other's;
* **degraded mode** -- when a shard has no live replica at all, the
  response is still returned from the shards that answered, explicitly
  marked ``"degraded": true`` with ``"shards_answered"`` /
  ``"shards_missing"`` listed (and never cached);
* **cluster-wide hot swap** -- ``POST /datasets`` quiesces the router
  gate, pushes the full new snapshot to every node (each repartitions and
  slices locally), bumps the router dataset version/epoch and invalidates
  the result cache.  Nodes that were unreachable during the swap keep
  reporting their old epoch and are excluded from routing until the
  heartbeat loop resynchronises them.

``benchmarks/bench_cluster.py --check`` gates healthy-fleet bit-for-bit
identity against the unsharded oracle and zero lost/wrong responses while
a node is SIGKILLed under load with replication >= 2.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.membership import (
    ClusterMembership,
    MembershipConfig,
)
from repro.cluster.node import BOOT_EPOCH
from repro.cluster.transport import (
    NodeTransportError,
    get_json,
    post_json,
)
from repro.core.engine import (
    ALGORITHM_CHOICES,
    EngineConfig,
    validate_algorithm_combination,
)
from repro.exceptions import InvalidQueryError, OverloadError
from repro.index.delta import DatasetDelta, materialize
from repro.model.objects import DataObject, FeatureObject
from repro.model.result import QueryResult, ScoredObject, merge_top_k
from repro.server.admission import AdmissionController
from repro.server.cache import ResultCache
from repro.server.metrics import LatencyHistogram
from repro.server.protocol import ParsedRequest, parse_query_spec, result_payload
from repro.server.service import ServiceConfig, resolve_request_defaults
from repro.sharding.partition import ShardingPlan, partition_datasets
from repro.spatial.partitioning import GridPartitioner


@dataclass(frozen=True)
class NodeSpec:
    """One node endpoint the router should route to.

    Attributes:
        url: Base URL (``http://host:port``) of a running shard node.
        shard_index: The shard slice that node serves.
    """

    url: str
    shard_index: int


@dataclass
class ClusterConfig:
    """Router-level knobs of one :class:`ClusterRouter`.

    Attributes:
        shards: Shard count of the cluster partitioning (>= 1); must match
            what every node was booted with.
        max_radius: Feature replication radius of the partitioning (None =
            unbounded); over-radius queries are rejected, as in sharded
            mode.
        heartbeat_interval: Seconds between fleet heartbeat rounds
            (0 disables the background thread; probes can still be driven
            explicitly via :meth:`ClusterRouter.probe_now`).
        liveness_timeout: Silence (seconds) after which a node is dead.
        max_misses: Consecutive failures after which a node is dead.
        node_deadline: Per-sub-request socket deadline (seconds).
        retries: Extra attempts per shard after the primary fails (the
            "one retry" contract; each attempt goes to the next live
            replica).
        scatter_threads: Scatter pool size; None picks
            ``min(64, shards * 8)``.
        result_cache_capacity: Router response LRU entries (0 disables).
        initial_epoch: Dataset epoch the fleet booted with.
    """

    shards: int = 2
    max_radius: Optional[float] = None
    heartbeat_interval: float = 2.0
    liveness_timeout: float = 6.0
    max_misses: int = 3
    node_deadline: float = 10.0
    retries: int = 1
    scatter_threads: Optional[int] = None
    result_cache_capacity: int = 256
    initial_epoch: str = BOOT_EPOCH


@dataclass
class _ClusterCounters:
    """Mutable request accounting (guarded by the router lock)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    swaps: int = 0
    failovers: int = 0
    degraded_responses: int = 0
    resyncs: int = 0
    write_batches: int = 0


class ClusterRouter:
    """HTTP scatter-gather front-end over process-isolated shard nodes."""

    def __init__(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
        nodes: Sequence[NodeSpec],
        cluster: Optional[ClusterConfig] = None,
        engine_config: Optional[EngineConfig] = None,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        """Register the fleet and derive request defaults from the dataset.

        The router holds the full current snapshot (it needs it to resync
        stale nodes and to repartition on swaps) but runs no engine of its
        own -- all query work happens on the nodes.

        Args:
            data_objects: The full object dataset the fleet booted with.
            feature_objects: The full feature dataset.
            nodes: One spec per node endpoint; every shard index in
                ``[0, shards)`` should appear at least once (a shard with
                no node can only ever be answered in degraded mode).
            cluster: Cluster knobs (defaults to :class:`ClusterConfig`).
            engine_config: Used only to resolve request defaults
                (grid size) identically to the nodes'.
            service_config: Used for request defaults and the router
                result-cache capacity override (``result_cache_capacity``
                on ``cluster`` wins).

        Raises:
            ValueError: for an empty fleet, a bad shard count, or a node
                spec outside ``[0, shards)``.
            InvalidQueryError: for a negative ``max_radius``.
        """
        self.cluster = cluster or ClusterConfig()
        if self.cluster.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.cluster.shards}")
        if not nodes:
            raise ValueError("a cluster router needs at least one node")
        for spec in nodes:
            if not 0 <= spec.shard_index < self.cluster.shards:
                raise ValueError(
                    f"node {spec.url!r} serves shard {spec.shard_index}, "
                    f"outside [0, {self.cluster.shards})"
                )
        if self.cluster.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.cluster.retries}")
        self._engine_config = engine_config or EngineConfig()
        self._service_config = service_config or ServiceConfig()
        self._plan = partition_datasets(
            data_objects,
            feature_objects,
            self.cluster.shards,
            max_radius=self.cluster.max_radius,
        )
        self._current_data: List[DataObject] = list(data_objects)
        self._current_features: List[FeatureObject] = list(feature_objects)
        self._membership = ClusterMembership(
            MembershipConfig(
                max_misses=self.cluster.max_misses,
                liveness_timeout=self.cluster.liveness_timeout,
            )
        )
        for spec in nodes:
            self._membership.register(
                spec.url, spec.shard_index, dataset_epoch=self.cluster.initial_epoch
            )
        self._epoch = self.cluster.initial_epoch
        self._defaults = resolve_request_defaults(
            self._plan.extent, self._engine_config.grid_size, self._service_config
        )
        self._cache = ResultCache(self.cluster.result_cache_capacity)
        #: Admission happens once, at the cluster front (the shard-node
        #: processes run without admission configured): a request admitted
        #: here is never half-shed by one node of its scatter, and every
        #: deployment mode sheds with the same 429 contract.
        self._admission = AdmissionController(
            queue_depth=self._service_config.admission_queue_depth,
            default_deadline_ms=self._service_config.default_deadline_ms,
        )
        self._latency = LatencyHistogram()
        self._counters = _ClusterCounters()
        self._dataset_version = 0
        #: Monotonic write-batch counter; with the dataset version it forms
        #: the composite cache version, so a cached response can never
        #: outlive the write that changed its answer.
        self._write_version = 0
        self._lock = threading.Lock()
        #: Serializes hot swaps (and resyncs) against each other.
        self._swap_lock = threading.Lock()
        #: Quiesce gate: while ``_paused`` no new request scatters.
        self._gate = threading.Condition()
        self._paused = False
        self._inflight = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._started = False
        self._closed = False
        self._started_monotonic: Optional[float] = None

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> "ClusterRouter":
        """Probe the fleet once, start the scatter pool and heartbeats."""
        with self._lock:
            if self._started or self._closed:
                return self
            self._started = True
            self._started_monotonic = time.monotonic()
        workers = self.cluster.scatter_threads or min(
            64, self.cluster.shards * 8
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-cluster-scatter"
        )
        # A synchronous first round: node identities and epochs are known
        # before the first request is routed.
        self.probe_now()
        if self.cluster.heartbeat_interval > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._run_heartbeats,
                name="repro-cluster-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()
        return self

    def shutdown(self) -> None:
        """Drain in-flight requests, stop heartbeats and the pool.

        The node processes are *not* owned by the router (``repro serve
        --cluster`` owns the subprocesses it spawned; remote nodes are
        somebody else's); shutting the router down leaves them serving.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join()
        with self._gate:
            while self._inflight:
                self._gate.wait()
        with self._swap_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has been called."""
        return self._closed

    def uptime_seconds(self) -> float:
        """Seconds since :meth:`start` (0.0 before it); lock-free."""
        started = self._started_monotonic
        return time.monotonic() - started if started is not None else 0.0

    # ------------------------------------------------------------------ #
    # heartbeats / membership

    def _run_heartbeats(self) -> None:
        interval = self.cluster.heartbeat_interval
        while not self._heartbeat_stop.wait(interval):
            try:
                self.probe_now()
            except Exception:  # noqa: BLE001 - the loop must survive
                # A probe round never raises by construction; this is the
                # belt-and-braces keeping liveness tracking alive anyway.
                pass

    def probe_now(self) -> Dict[str, str]:
        """One full heartbeat round; returns ``{url: state}`` afterwards.

        Probes every registered node, applies the liveness timeout, and
        resynchronises stale-epoch nodes (alive nodes whose last reported
        dataset epoch is not the router's current one -- they were dead
        through a swap, or restarted from their boot file).  Called by the
        heartbeat thread on its cadence, and directly by tests/operators
        for a deterministic round.
        """
        for url in self._membership.urls():
            self._probe_node(url)
        self._membership.sweep()
        self._resync_stale_nodes()
        return {
            row["url"]: row["state"] for row in self._membership.snapshot()
        }

    def _probe_node(self, url: str) -> None:
        try:
            payload = get_json(
                f"{url}/heartbeat", timeout=self.cluster.node_deadline
            )
        except NodeTransportError:
            self._membership.mark_failure(url)
            return
        self._membership.mark_success(
            url,
            node_id=str(payload.get("node_id")),
            dataset_epoch=str(payload.get("dataset_epoch")),
            dataset_version=payload.get("dataset_version"),
        )

    def _resync_stale_nodes(self) -> None:
        """Push the current snapshot to alive nodes reporting an old epoch."""
        stale = self._membership.stale_nodes(self._epoch)
        if not stale:
            return
        with self._swap_lock:
            # Re-check under the lock: a concurrent swap may have moved the
            # epoch (and will resync against the new one itself).
            stale = self._membership.stale_nodes(self._epoch)
            for url in stale:
                if self._push_dataset(url, self._epoch):
                    with self._lock:
                        self._counters.resyncs += 1

    def _push_dataset(self, url: str, epoch: str) -> bool:
        """POST the current full snapshot to one node; True on success."""
        payload = _dataset_payload(
            self._current_data, self._current_features, epoch
        )
        try:
            post_json(
                f"{url}/datasets", payload, timeout=self.cluster.node_deadline
            )
        except NodeTransportError:
            self._membership.mark_failure(url)
            return False
        except InvalidQueryError:
            # A node that rejects the snapshot (4xx) is misconfigured, not
            # merely unreachable; it stays excluded by its stale epoch.
            return False
        self._membership.mark_success(url, dataset_epoch=epoch)
        return True

    @property
    def membership(self) -> ClusterMembership:
        """The live membership registry (shared with the heartbeat loop)."""
        return self._membership

    @property
    def dataset_epoch(self) -> str:
        """The epoch tag of the snapshot the fleet should be serving."""
        return self._epoch

    # ------------------------------------------------------------------ #
    # serving

    def submit(self, spec: Mapping[str, object]) -> Dict[str, object]:
        """Serve one request object; returns its response payload.

        Identical request/response contract to ``QueryService.submit``
        plus the cluster additions: over-``max_radius`` queries are
        rejected, and when one or more shards have no live replica the
        payload carries ``"degraded": true`` with ``"shards_answered"`` /
        ``"shards_missing"`` listed.

        Raises:
            InvalidQueryError: for an invalid request or an over-radius one.
            RuntimeError: when the router is not started or already shut
                down.
        """
        parsed = self._parse(spec)
        return self._serve(parsed)

    def submit_many(
        self, specs: Sequence[Mapping[str, object]]
    ) -> List[Dict[str, object]]:
        """Serve a batch of request objects; responses in input order.

        Validated up front as one batch, then served concurrently on a
        batch-local pool so the scatter round-trips overlap (same two-level
        pool structure as the in-process shard router).
        """
        parsed_list = [self._parse(spec) for spec in specs]
        if len(parsed_list) <= 1:
            return [self._serve(parsed) for parsed in parsed_list]
        with ThreadPoolExecutor(
            max_workers=min(len(parsed_list), 8),
            thread_name_prefix="repro-cluster-batch",
        ) as pool:
            return list(pool.map(self._serve, parsed_list))

    def _parse(self, spec: Mapping[str, object]) -> ParsedRequest:
        parsed = parse_query_spec(spec, self._defaults, ALGORITHM_CHOICES)
        validate_algorithm_combination(
            parsed.item.algorithm, parsed.item.score_mode
        )
        max_radius = self.cluster.max_radius
        if max_radius is not None and parsed.item.query.radius > max_radius:
            raise InvalidQueryError(
                f"query radius {parsed.item.query.radius} exceeds the cluster "
                f"replication radius (max_radius={max_radius}); features "
                "beyond it were not replicated across shard boundaries, so "
                "the cluster cannot answer this query exactly"
            )
        return parsed

    def _serve(self, parsed: ParsedRequest) -> Dict[str, object]:
        started = time.monotonic()
        with self._lock:
            if not self._started:
                raise RuntimeError("the query service is not started")
            if self._closed:
                raise RuntimeError("the query service is shut down")
            self._counters.submitted += 1
        admission = self._admission
        deadline = admission.resolve_deadline(parsed.deadline_ms)
        admission.on_arrival(deadline)
        admission.acquire()
        try:
            response = self._serve_admitted(parsed, deadline)
        except OverloadError:
            # The gate's queue-expiry check -- or, when someone points the
            # router at admission-enabled nodes (not the spawned-fleet
            # default), a 429 relayed by the transport.  Either way the
            # client sees a 429, so it lands in the shed bucket.
            admission.release("expired")
            with self._lock:
                self._counters.failed += 1
            raise
        except BaseException:
            admission.release("failed")
            with self._lock:
                self._counters.failed += 1
            raise
        latency = time.monotonic() - started
        admission.release("completed", latency)
        self._latency.record(latency)
        with self._lock:
            self._counters.completed += 1
        return response

    def _serve_admitted(
        self, parsed: ParsedRequest, deadline: Optional[float]
    ) -> Dict[str, object]:
        """Gate entry + HTTP scatter-gather for one admitted request."""
        with self._gate:
            while self._paused:
                self._gate.wait()
            if self._closed:
                raise RuntimeError("the query service is shut down")
            self._inflight += 1
        try:
            # A fleet-wide swap may have held the gate past the request's
            # budget; shed explicitly instead of serving a too-late answer.
            if self._admission.expired_in_queue(deadline):
                raise self._admission.queue_expiry_error()
            return self._serve_gated(parsed)
        finally:
            with self._gate:
                self._inflight -= 1
                self._gate.notify_all()

    def _serve_gated(self, parsed: ParsedRequest) -> Dict[str, object]:
        """Cache probe + HTTP scatter-gather; runs inside the quiesce gate."""
        key = parsed.canonical_key((self._dataset_version, self._write_version))
        if self._cache.enabled:
            payload = self._cache.get(key)
            if payload is not None:
                payload["cached"] = True
                if not parsed.include_stats:
                    payload.pop("stats", None)
                with self._lock:
                    self._counters.cache_hits += 1
                return payload

        answered, missing = self._scatter(parsed)
        full = self._gather(parsed, answered, missing)
        if not missing:
            # A degraded (partial) answer must never be served to a later
            # healthy request from the cache.
            self._cache.put(key, full)
        response = dict(full)
        if not parsed.include_stats:
            response.pop("stats", None)
        return response

    def _resolved_spec(self, parsed: ParsedRequest) -> Dict[str, object]:
        """The fully resolved spec scattered to the nodes (always with stats)."""
        item = parsed.item
        return {
            "keywords": sorted(item.query.keywords),
            "k": item.query.k,
            "radius": item.query.radius,
            "algorithm": item.algorithm,
            "grid_size": item.grid_size,
            "score_mode": item.score_mode,
            "stats": True,
        }

    def _scatter(
        self, parsed: ParsedRequest
    ) -> Tuple[List[Tuple[int, Dict[str, object]]], List[int]]:
        """Fan out to every data-bearing shard; returns (answered, missing)."""
        spec = self._resolved_spec(parsed)
        targets = [
            shard.shard_id for shard in self._plan.shards if not shard.is_empty
        ]
        if not targets:
            return [], []
        if len(targets) == 1:
            outcomes = [self._query_shard(targets[0], spec)]
        else:
            assert self._pool is not None  # started before requests are gated
            futures = [
                self._pool.submit(self._query_shard, shard_id, spec)
                for shard_id in targets
            ]
            outcomes = [future.result() for future in futures]
        answered: List[Tuple[int, Dict[str, object]]] = []
        missing: List[int] = []
        for shard_id, response in zip(targets, outcomes):
            if response is None:
                missing.append(shard_id)
            else:
                answered.append((shard_id, response))
        return answered, missing

    def _query_shard(
        self, shard_index: int, spec: Mapping[str, object]
    ) -> Optional[Dict[str, object]]:
        """One shard's sub-request: deadline per attempt, failover retries.

        Tries the shard's routing-eligible replicas in replica-rank order,
        at most ``1 + retries`` attempts.  A transport failure (refused,
        reset, timeout, 5xx) demotes the node in the membership and moves
        on; an application-level 400 is raised to the caller unchanged (a
        replica would reject it identically).  Returns None when no
        eligible replica answered -- the degraded case.
        """
        candidates = self._membership.candidates(shard_index, self._epoch)
        attempts = candidates[: 1 + self.cluster.retries]
        failed: List[str] = []
        for url in attempts:
            try:
                response = post_json(
                    f"{url}/query", spec, timeout=self.cluster.node_deadline
                )
            except NodeTransportError:
                self._membership.mark_failure(url)
                failed.append(url)
                continue
            self._membership.mark_success(url)
            if failed:
                for loser in failed:
                    self._membership.record_failover(loser)
                with self._lock:
                    self._counters.failovers += 1
            return response
        return None

    def _gather(
        self,
        parsed: ParsedRequest,
        answered: List[Tuple[int, Dict[str, object]]],
        missing: List[int],
    ) -> Dict[str, object]:
        """Merge per-shard partials; attach cluster stats and degraded marks."""
        partials: List[List[ScoredObject]] = [
            [
                ScoredObject(
                    DataObject(oid=entry["oid"], x=entry["x"], y=entry["y"]),
                    entry["score"],
                )
                for entry in response["results"]
            ]
            for _, response in answered
        ]
        entries = merge_top_k(partials, parsed.item.query.k)
        stats = self._aggregate_stats(parsed, answered, missing)
        stats_parsed = ParsedRequest(item=parsed.item, include_stats=True)
        payload = result_payload(stats_parsed, QueryResult(entries, stats=stats))
        if missing:
            payload["degraded"] = True
            payload["shards_answered"] = sorted(
                shard_id for shard_id, _ in answered
            )
            payload["shards_missing"] = sorted(missing)
            with self._lock:
                self._counters.degraded_responses += 1
        return payload

    def _aggregate_stats(
        self,
        parsed: ParsedRequest,
        answered: List[Tuple[int, Dict[str, object]]],
        missing: List[int],
    ) -> Dict[str, object]:
        """Cluster stats tree: sums of shard work, makespan of shard time."""
        stats: Dict[str, object] = {
            "algorithm": parsed.item.algorithm,
            "grid_size": parsed.item.grid_size,
        }
        summed = (
            "shuffled_records",
            "features_pruned",
            "features_examined",
            "score_computations",
        )
        totals: Dict[str, float] = dict.fromkeys(summed, 0)
        makespan = 0.0
        planned: Dict[str, str] = {}
        for shard_id, response in answered:
            shard_stats = response.get("stats", {})
            for name in summed:
                if name in shard_stats:
                    totals[name] += shard_stats[name]
            makespan = max(makespan, shard_stats.get("simulated_seconds", 0.0))
            if "planned_algorithm" in response:
                planned[str(shard_id)] = response["planned_algorithm"]
            if "backend" in shard_stats and "backend" not in stats:
                stats["backend"] = shard_stats["backend"]
                stats["workers"] = shard_stats.get("workers")
        stats.update(totals)
        stats["simulated_seconds"] = makespan
        stats["cluster"] = {
            "shards_queried": len(answered),
            "shards_missing": sorted(missing),
            "degraded": bool(missing),
            "dataset_version": self._dataset_version,
            "dataset_epoch": self._epoch,
            "planned_algorithms": planned or None,
        }
        if planned and len(set(planned.values())) == 1:
            stats["planned_algorithm"] = next(iter(planned.values()))
        return stats

    # ------------------------------------------------------------------ #
    # datasets

    def swap_datasets(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
    ) -> Dict[str, object]:
        """Hot-swap the dataset across the whole fleet; returns snapshot info.

        The cluster extension of the two-level quiesce protocol:

        1. the router gate pauses (in-flight scatter-gathers drain, new
           requests queue);
        2. a new epoch tag is minted and the full snapshot is pushed to
           every non-dead node (``POST /datasets`` with the epoch); each
           node repartitions deterministically and swaps its slice under
           its own quiesce gate;
        3. the router dataset version bumps (cache entries become
           unreachable), defaults re-derive from the new extent, and the
           gate reopens.

        A node the push could not reach keeps its old epoch: it is
        excluded from routing (its shard's other replicas answer, or the
        shard goes degraded) until the heartbeat loop resynchronises it.
        """
        with self._swap_lock:
            with self._gate:
                self._paused = True
                while self._inflight:
                    self._gate.wait()
            try:
                plan = partition_datasets(
                    data_objects,
                    feature_objects,
                    self.cluster.shards,
                    max_radius=self.cluster.max_radius,
                )
                version = self._dataset_version + 1
                epoch = f"v{version}"
                self._current_data = list(data_objects)
                self._current_features = list(feature_objects)
                for url in self._membership.urls():
                    if self._membership.status_of(url).state == "dead":
                        continue
                    self._push_dataset(url, epoch)
                self._plan = plan
                self._dataset_version = version
                self._epoch = epoch
                self._cache.invalidate()
                self._defaults = resolve_request_defaults(
                    plan.extent,
                    self._engine_config.grid_size,
                    self._service_config,
                )
                with self._lock:
                    self._counters.swaps += 1
            finally:
                with self._gate:
                    self._paused = False
                    self._gate.notify_all()
        return self.dataset_info()

    def set_datasets(
        self,
        data_objects: Sequence[DataObject],
        feature_objects: Sequence[FeatureObject],
    ) -> None:
        """Alias of :meth:`swap_datasets` (the :class:`QueryService` name)."""
        self.swap_datasets(data_objects, feature_objects)

    def dataset_info(self) -> Dict[str, object]:
        """Version, epoch and sizes of the current (full) dataset snapshot."""
        return {
            "version": self._dataset_version,
            "dataset_epoch": self._epoch,
            "data_objects": len(self._current_data),
            "feature_objects": len(self._current_features),
        }

    # ------------------------------------------------------------------ #
    # incremental ingest (write routing; see docs/ingest.md)

    def apply_objects(
        self,
        append_data: Sequence[DataObject] = (),
        append_features: Sequence[FeatureObject] = (),
        delete_data_oids: Sequence[str] = (),
        delete_feature_oids: Sequence[str] = (),
    ) -> Dict[str, object]:
        """Route one incremental write batch to the whole fleet.

        The batch is validated atomically against the router's full
        snapshot first (a batch any node would reject is rejected whole,
        before any node sees it), folded into the router's own copy (the
        resync source of truth), then routed by the same rules
        :func:`~repro.sharding.partition.partition_datasets` applies at
        build time: a data append goes to the nodes of the one shard whose
        cell contains it, a feature append is replicated to every shard
        within ``max_radius`` (all shards when unbounded), deletes are
        broadcast (node deltas are idempotent).  Every write batch mints a
        fresh cluster epoch and is pushed to **every** non-dead node --
        nodes the batch routes nothing to get a pure epoch bump -- so the
        whole fleet moves epochs together.  A node the push cannot reach
        keeps its old epoch, drops out of routing, and is resynchronised
        with a full snapshot by the heartbeat loop, exactly like a node
        that slept through a hot swap.

        Unlike single-process delta writes (which never block readers),
        a cluster write briefly quiesces the scatter gate: per-node applies
        are not atomic across the fleet, and routing reads concurrently
        would let one response mix pre- and post-write shard answers.  The
        node-local deltas still make each push tiny next to a snapshot
        push, which is where the incremental win lives.

        Returns:
            The applied counts plus the new epoch and write version.

        Raises:
            DatasetUpdateError: for an invalid batch (no node is touched,
                serving is not paused).
            RuntimeError: when the router is not started or shut down.
        """
        with self._lock:
            if not self._started:
                raise RuntimeError("the query service is not started")
            if self._closed:
                raise RuntimeError("the query service is shut down")
        append_data = list(append_data)
        append_features = list(append_features)
        delete_data_oids = list(delete_data_oids)
        delete_feature_oids = list(delete_feature_oids)
        with self._swap_lock:
            # Validate before quiescing: a rejected batch must not pause
            # serving.  The throwaway delta applies the exact same
            # deletes-first / duplicate-oid / extent rules a node would.
            probe = DatasetDelta()
            counts = probe.apply(
                append_data=append_data,
                append_features=append_features,
                delete_data_oids=delete_data_oids,
                delete_feature_oids=delete_feature_oids,
                base_data_oids={obj.oid for obj in self._current_data},
                base_feature_oids={obj.oid for obj in self._current_features},
                extent=self._plan.extent,
            )
            counts.pop("delta_version", None)
            with self._gate:
                self._paused = True
                while self._inflight:
                    self._gate.wait()
            try:
                self._current_data, self._current_features = materialize(
                    self._current_data, self._current_features,
                    probe.snapshot(),
                )
                self._write_version += 1
                epoch = f"v{self._dataset_version}w{self._write_version}"
                sub_updates = self._route_update(
                    append_data, append_features,
                    delete_data_oids, delete_feature_oids,
                )
                for url in self._membership.urls():
                    status = self._membership.status_of(url)
                    if status.state == "dead":
                        continue
                    self._push_objects(
                        url, sub_updates[status.shard_index], epoch
                    )
                self._epoch = epoch
                with self._lock:
                    self._counters.write_batches += 1
            finally:
                with self._gate:
                    self._paused = False
                    self._gate.notify_all()
        return {
            **counts,
            "dataset_epoch": epoch,
            "write_version": self._write_version,
        }

    def _route_update(
        self,
        append_data: Sequence[DataObject],
        append_features: Sequence[FeatureObject],
        delete_data_oids: Sequence[str],
        delete_feature_oids: Sequence[str],
    ) -> List[Dict[str, object]]:
        """Slice one validated batch into per-shard sub-updates."""
        num_shards = self.cluster.shards
        grid = self._plan.grid
        sub_data: List[List[DataObject]] = [[] for _ in range(num_shards)]
        for obj in append_data:
            sub_data[grid.locate(obj.x, obj.y) - 1].append(obj)
        sub_features: List[List[FeatureObject]] = [
            [] for _ in range(num_shards)
        ]
        if append_features:
            if self.cluster.max_radius is None or num_shards == 1:
                for shard_id in range(num_shards):
                    sub_features[shard_id] = list(append_features)
            else:
                partitioner = GridPartitioner(grid, self.cluster.max_radius)
                for feature in append_features:
                    for cell_id in partitioner.assign_feature_object(feature):
                        sub_features[cell_id - 1].append(feature)
        return [
            {
                "append_data": sub_data[shard_id],
                "append_features": sub_features[shard_id],
                "delete_data_oids": list(delete_data_oids),
                "delete_feature_oids": list(delete_feature_oids),
            }
            for shard_id in range(num_shards)
        ]

    def _push_objects(
        self, url: str, sub_update: Mapping[str, object], epoch: str
    ) -> bool:
        """POST one shard's slice of a write batch to one node."""
        payload = _objects_payload(sub_update, epoch)
        try:
            post_json(
                f"{url}/objects", payload, timeout=self.cluster.node_deadline
            )
        except NodeTransportError:
            self._membership.mark_failure(url)
            return False
        except InvalidQueryError:
            # A node that rejects the sub-update (4xx) diverged from the
            # router's snapshot; its stale epoch keeps it out of routing
            # until the heartbeat loop resyncs it with a full snapshot.
            return False
        self._membership.mark_success(url, dataset_epoch=epoch)
        return True

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def admission(self) -> AdmissionController:
        """The front-door admission controller (nodes run without one)."""
        return self._admission

    @property
    def plan(self) -> ShardingPlan:
        """The current partitioning plan (replaced wholesale by hot swaps)."""
        return self._plan

    def stats(self) -> Dict[str, object]:
        """Aggregate router statistics (the cluster ``GET /stats`` payload).

        Local-only by design: the tree is built from the router's own
        counters and the membership registry -- no node round-trips, so
        ``/stats`` stays cheap and answers even with the fleet down.
        Per-node counter trees live on the nodes' own ``GET /stats``.
        """
        with self._lock:
            counters = _ClusterCounters(**vars(self._counters))
        plan_stats = self._plan.stats
        return {
            "uptime_seconds": self.uptime_seconds(),
            "started": self._started,
            "closed": self._closed,
            "requests": {
                "submitted": counters.submitted,
                "completed": counters.completed,
                "failed": counters.failed,
                "result_cache_hits": counters.cache_hits,
                "failovers": counters.failovers,
                "degraded_responses": counters.degraded_responses,
            },
            "latency": self._latency.snapshot(),
            "admission": self._admission.snapshot(),
            "result_cache": {
                "capacity": self._cache.capacity,
                "size": len(self._cache),
                **self._cache.stats.as_dict(),
            },
            "cluster": {
                "shards": plan_stats.num_shards,
                "layout": list(plan_stats.layout),
                "max_radius": self.cluster.max_radius,
                "nodes": self._membership.snapshot(),
                "alive_nodes": self._membership.alive_count(),
                "dataset_epoch": self._epoch,
                "heartbeat_interval_seconds": self.cluster.heartbeat_interval,
                "liveness_timeout_seconds": self.cluster.liveness_timeout,
                "max_misses": self.cluster.max_misses,
                "node_deadline_seconds": self.cluster.node_deadline,
                "retries": self.cluster.retries,
                "resyncs": counters.resyncs,
                "feature_replication_factor": plan_stats.replication_factor,
                "grid_aligned_default": self._plan.grid_aligned(
                    self._defaults.grid_size
                ),
            },
            "ingest": {
                "write_batches": counters.write_batches,
                "write_version": self._write_version,
            },
            "dataset": {**self.dataset_info(), "swaps": counters.swaps},
            "defaults": vars(self._defaults),
        }


def _objects_payload(
    sub_update: Mapping[str, object], epoch: str
) -> Dict[str, object]:
    """The ``POST /objects`` body for one shard's slice of a write batch.

    An all-empty sub-update still produces a valid body -- just the epoch
    tag -- which the node HTTP handler accepts as a pure epoch bump.
    """
    payload: Dict[str, object] = {"epoch": epoch}
    append: Dict[str, object] = {}
    if sub_update["append_data"]:
        append["data_objects"] = [
            {"oid": obj.oid, "x": obj.x, "y": obj.y}
            for obj in sub_update["append_data"]
        ]
    if sub_update["append_features"]:
        append["feature_objects"] = [
            {
                "oid": obj.oid,
                "x": obj.x,
                "y": obj.y,
                "keywords": sorted(obj.keywords),
            }
            for obj in sub_update["append_features"]
        ]
    if append:
        payload["append"] = append
    delete: Dict[str, object] = {}
    if sub_update["delete_data_oids"]:
        delete["data_oids"] = list(sub_update["delete_data_oids"])
    if sub_update["delete_feature_oids"]:
        delete["feature_oids"] = list(sub_update["delete_feature_oids"])
    if delete:
        payload["delete"] = delete
    return payload


def _dataset_payload(
    data_objects: Sequence[DataObject],
    feature_objects: Sequence[FeatureObject],
    epoch: str,
) -> Dict[str, object]:
    """The inline ``POST /datasets`` body for one full snapshot + epoch."""
    return {
        "epoch": epoch,
        "data_objects": [
            {"oid": obj.oid, "x": obj.x, "y": obj.y} for obj in data_objects
        ],
        "feature_objects": [
            {
                "oid": obj.oid,
                "x": obj.x,
                "y": obj.y,
                "keywords": sorted(obj.keywords),
            }
            for obj in feature_objects
        ],
    }


__all__ = ["ClusterConfig", "ClusterRouter", "NodeSpec"]
