"""Admission control: bounded queueing, deadlines, load shedding.

Under overload an unbounded service does not degrade -- it collapses:
every queued request eventually times out, so offered load past capacity
turns goodput into zero.  :class:`AdmissionController` bounds how much
work a service accepts at once and sheds the rest *explicitly*:

* a **bounded admission queue** -- at most ``queue_depth`` requests may
  be admitted-but-unfinished at any moment; an arrival past that is shed
  immediately (:class:`~repro.exceptions.OverloadError`, HTTP 429) with
  a ``retry_after_ms`` backoff hint instead of waiting toward a timeout;
* **per-request deadlines** -- a request may carry ``deadline_ms`` on
  the wire (or inherit ``default_deadline_ms``); one whose budget is
  already spent on arrival is shed without queueing, and one whose
  budget expires *while queued* is failed by the dispatcher before it
  ever touches an engine (work that can no longer be useful is not
  worth executing);
* an **SLO tracker** -- goodput / shed / deadline-miss counters plus a
  :class:`~repro.server.metrics.LatencyHistogram` over *admitted,
  completed* requests only, exported under ``/stats`` ``"admission"``.

The counters reconcile by construction (everything is counted under one
lock at its decision point)::

    offered  == admitted + shed_queue_full + shed_deadline
    admitted == completed + failed + deadline_miss + inflight
    shed     == shed_queue_full + shed_deadline + deadline_miss

so a load generator can check end-to-end that no request was silently
dropped: every offered request is accounted as a success, an explicit
failure, or an explicit 429.

A controller built with ``queue_depth=0`` is *disabled*: every hook is a
no-op, which is what keeps admission entirely out of the default serving
path (and out of per-shard services behind a router that admission-gates
at the front -- one request must be admitted once, not once per shard).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.exceptions import OverloadError
from repro.server.metrics import LatencyHistogram

#: Bounds of the ``retry_after_ms`` backoff hint.
MIN_RETRY_AFTER_MS = 1.0
MAX_RETRY_AFTER_MS = 5000.0

#: Backoff hint before any admitted request has completed (no latency
#: data to estimate from yet).
COLD_RETRY_AFTER_MS = 50.0


def shed_payload(message: str, retry_after_ms: float) -> Dict[str, object]:
    """The uniform 429 response body of a shed request.

    Every transport that sheds -- the HTTP front-end, the shard router,
    the cluster router -- answers with exactly this shape, so clients
    need one overload-handling path, not one per deployment mode.
    """
    return {
        "error": message,
        "shed": True,
        "retry_after_ms": retry_after_ms,
    }


class AdmissionController:
    """Bounded-admission gate with deadline enforcement and SLO counters.

    Thread-safe: transport threads call :meth:`on_arrival` /
    :meth:`acquire` / :meth:`release` concurrently with dispatcher
    threads calling :meth:`expired_in_queue` and stats readers calling
    :meth:`snapshot`.
    """

    def __init__(
        self,
        queue_depth: int = 0,
        default_deadline_ms: Optional[float] = None,
    ) -> None:
        """``queue_depth=0`` disables the controller entirely.

        Raises:
            ValueError: for a negative depth or a non-positive default
                deadline.
        """
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {default_deadline_ms}"
            )
        self.queue_depth = queue_depth
        self.default_deadline_ms = default_deadline_ms
        self._lock = threading.Lock()
        self._inflight = 0
        self._offered = 0
        self._admitted = 0
        self._completed = 0
        self._failed = 0
        self._shed_queue_full = 0
        self._shed_deadline = 0
        self._deadline_miss = 0
        #: Latency of admitted *and completed* requests only: shed and
        #: failed requests must not drag the SLO percentiles.
        self._latency = LatencyHistogram()
        #: Running mean of admitted latencies for the backoff estimate
        #: (the histogram does not expose its sum).
        self._latency_sum = 0.0
        self._latency_count = 0

    @property
    def enabled(self) -> bool:
        """False for a ``queue_depth=0`` controller (every hook no-ops)."""
        return self.queue_depth > 0

    # ------------------------------------------------------------------ #
    # deadlines

    def resolve_deadline(self, deadline_ms: Optional[float]) -> Optional[float]:
        """Absolute monotonic deadline of a request arriving *now*.

        Falls back to ``default_deadline_ms``; returns None when neither
        is set or the controller is disabled (deadlines are an admission
        feature -- without admission there is no shed path to honor
        them with).
        """
        if not self.enabled:
            return None
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is None:
            return None
        return time.monotonic() + deadline_ms / 1000.0

    def expired_in_queue(self, deadline: Optional[float]) -> bool:
        """Has an admitted request's deadline passed?  (Dispatcher check.)"""
        return (
            self.enabled
            and deadline is not None
            and time.monotonic() >= deadline
        )

    def queue_expiry_error(self) -> OverloadError:
        """The error a dispatcher fails a queue-expired request with."""
        return OverloadError(
            "deadline expired while queued; request was never executed",
            reason="deadline",
            retry_after_ms=self.retry_after_ms(),
        )

    # ------------------------------------------------------------------ #
    # admission decisions (transport threads)

    def on_arrival(self, deadline: Optional[float]) -> None:
        """Count one offered request; shed it if its budget is already spent.

        Raises:
            OverloadError: (reason ``"deadline"``) for a request whose
                deadline is blown on arrival.
        """
        if not self.enabled:
            return
        with self._lock:
            self._offered += 1
            if deadline is None or time.monotonic() < deadline:
                return
            self._shed_deadline += 1
            retry = self._retry_after_ms_locked()
        raise OverloadError(
            "deadline already expired on arrival",
            reason="deadline",
            retry_after_ms=retry,
        )

    def acquire(self) -> None:
        """Take one admission slot, or shed.

        Raises:
            OverloadError: (reason ``"queue_full"``) when ``queue_depth``
                requests are already admitted and unfinished.
        """
        if not self.enabled:
            return
        with self._lock:
            if self._inflight < self.queue_depth:
                self._admitted += 1
                self._inflight += 1
                return
            self._shed_queue_full += 1
            retry = self._retry_after_ms_locked()
        raise OverloadError(
            f"admission queue full ({self.queue_depth} requests in flight)",
            reason="queue_full",
            retry_after_ms=retry,
        )

    def admit_bypass(self) -> None:
        """Admit a request served without queueing (a result-cache hit).

        Cache hits are goodput -- they count as admitted and completed --
        but never occupy an admission slot: answering from memory does
        not contend with the engine pool.  The request was already
        counted as offered by :meth:`on_arrival`.
        """
        if not self.enabled:
            return
        with self._lock:
            self._admitted += 1
            self._completed += 1

    def release(
        self, outcome: str, latency_seconds: Optional[float] = None
    ) -> None:
        """Give back one admission slot with its terminal ``outcome``.

        Outcomes: ``"completed"`` (goodput; ``latency_seconds`` recorded),
        ``"expired"`` (deadline missed while queued -- an explicit shed),
        ``"failed"`` (engine error / timeout).
        """
        if not self.enabled:
            return
        if outcome not in ("completed", "expired", "failed"):
            raise ValueError(f"unknown admission outcome {outcome!r}")
        with self._lock:
            self._inflight -= 1
            if outcome == "completed":
                self._completed += 1
                if latency_seconds is not None:
                    self._latency_sum += max(latency_seconds, 0.0)
                    self._latency_count += 1
            elif outcome == "expired":
                self._deadline_miss += 1
            else:
                self._failed += 1
        if outcome == "completed" and latency_seconds is not None:
            self._latency.record(latency_seconds)

    # ------------------------------------------------------------------ #
    # fast shed (transport probe, before the request body is read)

    def overloaded(self) -> Optional[float]:
        """``retry_after_ms`` if the queue is full *right now*, else None.

        A pure probe: counts nothing.  The HTTP front-end uses it to
        answer 429 before even reading the request body; a transport
        that sheds on it must account the request via
        :meth:`record_fast_shed`.
        """
        if not self.enabled:
            return None
        with self._lock:
            if self._inflight >= self.queue_depth:
                return self._retry_after_ms_locked()
        return None

    def record_fast_shed(self) -> None:
        """Account one request shed by the transport before parsing."""
        if not self.enabled:
            return
        with self._lock:
            self._offered += 1
            self._shed_queue_full += 1

    # ------------------------------------------------------------------ #
    # backoff estimate + stats

    def retry_after_ms(self) -> float:
        """Client backoff hint: ~time for the current queue to drain."""
        with self._lock:
            return self._retry_after_ms_locked()

    def _retry_after_ms_locked(self) -> float:
        if self._latency_count:
            mean_ms = (self._latency_sum / self._latency_count) * 1000.0
        else:
            mean_ms = COLD_RETRY_AFTER_MS
        estimate = mean_ms * max(1, self._inflight)
        return min(max(estimate, MIN_RETRY_AFTER_MS), MAX_RETRY_AFTER_MS)

    def snapshot(self) -> Dict[str, object]:
        """The ``/stats`` ``"admission"`` subtree (counters reconcile)."""
        with self._lock:
            shed = (
                self._shed_queue_full + self._shed_deadline + self._deadline_miss
            )
            summary: Dict[str, object] = {
                "enabled": self.enabled,
                "queue_depth": self.queue_depth,
                "default_deadline_ms": self.default_deadline_ms,
                "inflight": self._inflight,
                "offered": self._offered,
                "admitted": self._admitted,
                "completed": self._completed,
                "failed": self._failed,
                "shed": shed,
                "shed_queue_full": self._shed_queue_full,
                "shed_deadline": self._shed_deadline,
                "deadline_miss": self._deadline_miss,
                "goodput": self._completed,
                "retry_after_ms": self._retry_after_ms_locked(),
            }
        # Outside the controller lock: the histogram has its own.
        summary["latency"] = self._latency.snapshot()
        return summary


__all__ = [
    "AdmissionController",
    "COLD_RETRY_AFTER_MS",
    "MAX_RETRY_AFTER_MS",
    "MIN_RETRY_AFTER_MS",
    "shed_payload",
]
