#!/usr/bin/env python
"""Mini reproduction of Figure 8: how the algorithms scale with dataset size.

Generates uniform datasets of doubling size (the paper doubles from 64M to
512M entries; here the sizes are scaled down so the study runs in seconds) and
prints the simulated job time per algorithm, plus the speedup of the
early-termination algorithms over the baseline.

Run with::

    python examples/scalability_study.py [max_size]
"""

from __future__ import annotations

import sys

from repro.bench.harness import run_scalability
from repro.datagen.synthetic import SyntheticDatasetConfig, generate_uniform


def main() -> None:
    max_size = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    sizes = []
    size = max_size
    while size >= 1_000 and len(sizes) < 4:
        sizes.append(size)
        size //= 2
    sizes.reverse()

    def factory(num_objects: int):
        return generate_uniform(SyntheticDatasetConfig(num_objects=num_objects, seed=7))

    print(f"Scalability sweep over dataset sizes {sizes} (uniform data)\n")
    sweep = run_scalability(
        "scalability-example",
        factory,
        sizes,
        spec_defaults={"grid_size": 8, "num_keywords": 5, "radius_fraction": 0.10, "k": 10},
    )
    print(sweep.as_table())

    print("\npSPQ / eSPQsco speedup per size:")
    for size, ratio in sweep.speedup().items():
        print(f"  {size:>7} objects: {ratio:.1f}x")

    print(
        "\nAs in the paper, the gap between the baseline and the early-termination\n"
        "algorithms widens as the dataset grows: pSPQ's per-cell work grows with\n"
        "the number of feature objects, while eSPQsco keeps examining only a\n"
        "handful of features per cell."
    )


if __name__ == "__main__":
    main()
