"""Figure 7 — Uniform (UN) synthetic dataset: default setup plus sweep endpoints.

The paper uses the synthetic datasets to stress scalability; the gap between
pSPQ and the early-termination algorithms is widest here (more than an order
of magnitude at full scale).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import execute

ALGORITHMS = ("pspq", "espq-len", "espq-sco")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7_default_setup(benchmark, uniform_spec, algorithm):
    result = benchmark(execute, uniform_spec, algorithm)
    assert len(result) <= uniform_spec.k


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7a_largest_grid(benchmark, uniform_spec, algorithm):
    result = benchmark(execute, uniform_spec, algorithm, grid_size=20)
    assert result.stats["num_cells"] == 400


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7b_ten_query_keywords(benchmark, uniform_spec, algorithm):
    result = benchmark(execute, uniform_spec, algorithm, num_keywords=10)
    assert result.stats["features_examined"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7c_largest_radius(benchmark, uniform_spec, algorithm):
    result = benchmark(execute, uniform_spec, algorithm, radius_fraction=1.0)
    assert result.stats["feature_duplicates"] >= 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7d_top_100(benchmark, uniform_spec, algorithm):
    result = benchmark(execute, uniform_spec, algorithm, k=100)
    assert len(result) <= 100
