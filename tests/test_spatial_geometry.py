"""Unit tests for points, bounding boxes and MINDIST."""

from __future__ import annotations

import pytest

from repro.spatial.geometry import BoundingBox, Point, euclidean_distance


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_module_level_distance(self):
        assert euclidean_distance(0, 0, 0, 2) == pytest.approx(2.0)


class TestBoundingBoxConstruction:
    def test_rejects_inverted_box(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 1, 10)

    def test_degenerate_box_allowed(self):
        box = BoundingBox(1, 1, 1, 1)
        assert box.area == 0.0

    def test_dimensions(self):
        box = BoundingBox(0, 0, 4, 2)
        assert box.width == 4
        assert box.height == 2
        assert box.area == 8
        assert box.center == Point(2.0, 1.0)


class TestContainsAndIntersects:
    def test_contains_interior_point(self):
        assert BoundingBox(0, 0, 10, 10).contains(5, 5)

    def test_contains_boundary_point(self):
        assert BoundingBox(0, 0, 10, 10).contains(0, 10)

    def test_does_not_contain_outside_point(self):
        assert not BoundingBox(0, 0, 10, 10).contains(10.01, 5)

    def test_intersects_overlapping(self):
        assert BoundingBox(0, 0, 5, 5).intersects(BoundingBox(4, 4, 8, 8))

    def test_intersects_touching_edges(self):
        assert BoundingBox(0, 0, 5, 5).intersects(BoundingBox(5, 0, 8, 5))

    def test_disjoint_boxes(self):
        assert not BoundingBox(0, 0, 1, 1).intersects(BoundingBox(2, 2, 3, 3))


class TestMinDistance:
    def test_zero_for_inside_point(self):
        assert BoundingBox(0, 0, 10, 10).min_distance(3, 3) == 0.0

    def test_distance_to_edge(self):
        assert BoundingBox(0, 0, 10, 10).min_distance(-2, 5) == pytest.approx(2.0)

    def test_distance_to_corner(self):
        assert BoundingBox(0, 0, 10, 10).min_distance(-3, -4) == pytest.approx(5.0)

    def test_distance_above_box(self):
        assert BoundingBox(0, 0, 10, 10).min_distance(5, 12) == pytest.approx(2.0)

    def test_boundary_point_distance_zero(self):
        assert BoundingBox(0, 0, 10, 10).min_distance(10, 10) == 0.0


class TestExpand:
    def test_expand_grows_every_side(self):
        expanded = BoundingBox(0, 0, 2, 2).expand(1.0)
        assert expanded == BoundingBox(-1, -1, 3, 3)

    def test_expand_zero_is_identity(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.expand(0.0) == box
