"""Core contribution of the paper: parallel/distributed SPQ processing.

Public API:

* :class:`~repro.core.engine.SPQEngine` -- runs a spatial preference query
  using keywords over (data, feature) datasets with any of the paper's three
  algorithms (``pSPQ``, ``eSPQlen``, ``eSPQsco``) on the simulated MapReduce
  substrate, or with the centralized oracle used for correctness checks.
* The individual MapReduce job classes in :mod:`repro.core.jobs`.
* The theoretical analysis helpers of Section 6 in :mod:`repro.core.analysis`.
"""

from repro.core.analysis import (
    duplication_factor,
    max_duplication_factor,
    reducer_cost_model,
    optimal_relative_cell_size,
)
from repro.core.centralized import CentralizedSPQ
from repro.core.engine import ALGORITHMS, EngineConfig, SPQEngine
from repro.core.indexed_baseline import IndexedCentralizedSPQ
from repro.core.jobs import ESPQLenJob, ESPQScoJob, PSPQJob
from repro.core.scoring import compute_score, rank_objects

__all__ = [
    "SPQEngine",
    "EngineConfig",
    "ALGORITHMS",
    "CentralizedSPQ",
    "IndexedCentralizedSPQ",
    "PSPQJob",
    "ESPQLenJob",
    "ESPQScoJob",
    "compute_score",
    "rank_objects",
    "duplication_factor",
    "max_duplication_factor",
    "reducer_cost_model",
    "optimal_relative_cell_size",
]
