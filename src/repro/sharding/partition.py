"""Extent-splitting dataset partitioner behind the shard router.

The paper's grid (Section 4.1) splits one query's work into per-cell reduce
tasks; sharding lifts the same idea one level up, to *service* granularity:
the dataset extent is divided into disjoint rectangular shard extents by a
:class:`~repro.sharding.layout.ShardLayout` -- the historical uniform
``cols x rows`` split, or a skew-aware count-balancing kd split -- every
data object is assigned to exactly one shard (the shards are disjoint and
cover the dataset), and feature objects are *replicated* to every shard
whose extent they can influence, exactly Lemma 1 applied at shard
granularity: a feature ``f`` must reach shard ``S`` iff
``MINDIST(f, extent(S)) <= r``.

Because the supported query radius is not known at partition time, the
replication radius is a partitioning parameter (``max_radius``); queries
with a larger radius cannot be answered exactly from the shards and are
rejected by the router.  ``max_radius=None`` replicates every feature to
every shard, which is exact for *any* radius at the cost of feature-side
memory (data objects -- the ranked set -- still split N ways, and so does
the per-cell reduce work that dominates query cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.centralized import dataset_extent
from repro.exceptions import InvalidQueryError
from repro.model.objects import DataObject, FeatureObject
from repro.sharding.layout import (
    DEFAULT_SKEW_RESOLUTION,
    LAYOUT_CHOICES,
    ShardLayout,
    data_cell_histogram,
    shard_layout,
)
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import UniformGrid


@dataclass
class ShardDataset:
    """One shard's slice of the dataset.

    Attributes:
        shard_id: 0-based shard index (the layout's shard numbering).
        box: The shard's extent slice (disjoint from its siblings' up to
            shared borders; border points belong to exactly one shard via
            ``ShardLayout.locate``).
        data_objects: Data objects homed in ``box``, in storage order.
        feature_objects: Feature objects within ``max_radius`` of ``box``
            (all features when replication is unbounded), in storage order.
    """

    shard_id: int
    box: BoundingBox
    data_objects: List[DataObject] = field(default_factory=list)
    feature_objects: List[FeatureObject] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the shard owns no data objects (nothing to rank)."""
        return not self.data_objects


@dataclass(frozen=True)
class ShardingStats:
    """Replication accounting of one partitioning run.

    Attributes:
        num_shards: Number of shards produced (degenerate datasets may
            reduce a skew layout below the requested count).
        layout: The layout grid's ``(cols, rows)`` cell dimensions (for
            uniform layouts: the shard-grid layout itself).
        num_data: Data objects partitioned (each into exactly one shard).
        num_features: Distinct feature objects partitioned.
        num_feature_copies: Total feature copies across shards.
        empty_shards: Shards that received no data objects.
        kind: The layout kind (``"uniform"`` or ``"skew"``).
    """

    num_shards: int
    layout: Tuple[int, int]
    num_data: int
    num_features: int
    num_feature_copies: int
    empty_shards: int
    kind: str = "uniform"

    @property
    def replication_factor(self) -> float:
        """Mean shards each feature was copied to (1.0 for an empty ``F``)."""
        if self.num_features == 0:
            return 1.0
        return self.num_feature_copies / self.num_features


@dataclass
class ShardingPlan:
    """The complete output of :func:`partition_datasets`.

    Attributes:
        extent: The full dataset extent every shard engine must grid over
            (cell-for-cell alignment with an unsharded engine is what makes
            scatter-gather results identical).
        grid: The layout grid (for uniform layouts: the coarse shard grid,
            one cell per shard -- the historical shape write routers rely
            on).
        max_radius: The replication radius (None = unbounded).
        shards: Per-shard datasets, in shard-id order.
        stats: Replication accounting.
        layout: The :class:`~repro.sharding.layout.ShardLayout` behind the
            shard extents.
    """

    extent: BoundingBox
    grid: UniformGrid
    max_radius: Optional[float]
    shards: List[ShardDataset]
    stats: ShardingStats
    layout: Optional[ShardLayout] = None

    def grid_aligned(self, grid_size: int) -> bool:
        """True when a ``grid_size`` x ``grid_size`` query grid never splits a shard.

        Every query-grid cell lies entirely inside one shard iff every
        shard edge lies on a query-grid line (for uniform layouts: both
        shard-grid dimensions divide the grid size).  Aligned grids make
        sharded results bit-for-bit identical to an unsharded engine
        *including* score-tie composition; non-aligned grids keep scores
        bit-for-bit but may resolve exact score ties at straddled cells
        differently (the same caveat the differential fuzz suite documents
        for eSPQsco).
        """
        if self.layout is not None:
            return self.layout.grid_aligned(grid_size)
        cols, rows = self.stats.layout
        return grid_size % cols == 0 and grid_size % rows == 0


def partition_datasets(
    data_objects: Sequence[DataObject],
    feature_objects: Sequence[FeatureObject],
    num_shards: int,
    max_radius: Optional[float] = None,
    extent: Optional[BoundingBox] = None,
    layout: Union[str, ShardLayout] = "uniform",
    layout_resolution: Optional[int] = None,
) -> ShardingPlan:
    """Split the dataset into up to ``num_shards`` spatially disjoint shards.

    Data objects are assigned to the shard enclosing them (storage order is
    preserved within each shard -- a requirement of result identity: a
    shard's per-cell reduce streams must be subsequences of the unsharded
    engine's).  Feature objects are replicated via
    :meth:`ShardLayout.shards_within` -- Lemma 1 at shard granularity --
    or to every shard when ``max_radius`` is None.

    Args:
        data_objects: The object dataset ``O`` in storage order.
        feature_objects: The feature dataset ``F`` in storage order.
        num_shards: Requested number of shards (>= 1).  A skew layout over
            a degenerate histogram may produce fewer (never zero, never
            shards with an empty extent).
        max_radius: Largest query radius the shards must answer exactly
            (None = unbounded, full feature replication).
        extent: Explicit full extent; derived from the datasets otherwise.
        layout: ``"uniform"`` (the historical most-square split),
            ``"skew"`` (count-balancing kd split over the data histogram)
            or a pre-built :class:`ShardLayout` (rebalancers pass the
            layout they derived).
        layout_resolution: Skew layout-grid cells per axis; ignored for
            uniform layouts.

    Raises:
        ValueError: for a non-positive shard count or an unknown layout.
        InvalidQueryError: for a negative ``max_radius``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if max_radius is not None and max_radius < 0:
        raise InvalidQueryError(f"max_radius must be >= 0, got {max_radius}")
    if extent is None:
        extent = dataset_extent(data_objects, feature_objects)
    if isinstance(layout, ShardLayout):
        shard_extents = layout
    elif layout == "uniform":
        shard_extents = ShardLayout.uniform(extent, num_shards)
    elif layout == "skew":
        resolution = layout_resolution or DEFAULT_SKEW_RESOLUTION
        layout_grid = UniformGrid(extent, resolution, resolution)
        shard_extents = ShardLayout.skew(
            extent,
            num_shards,
            data_cell_histogram(layout_grid, data_objects),
            resolution=resolution,
        )
    else:
        raise ValueError(
            f"unknown layout {layout!r}; expected one of {LAYOUT_CHOICES} "
            "or a ShardLayout"
        )

    shards = [
        ShardDataset(shard_id=shard_id, box=box)
        for shard_id, box in enumerate(shard_extents.boxes)
    ]
    for obj in data_objects:
        shards[shard_extents.locate(obj.x, obj.y)].data_objects.append(obj)

    produced = shard_extents.num_shards
    num_copies = 0
    if max_radius is None or produced == 1:
        for shard in shards:
            shard.feature_objects = list(feature_objects)
        num_copies = len(feature_objects) * produced
    else:
        for feature in feature_objects:
            for shard_id in shard_extents.shards_within(
                feature.x, feature.y, max_radius
            ):
                shards[shard_id].feature_objects.append(feature)
                num_copies += 1

    stats = ShardingStats(
        num_shards=produced,
        layout=shard_extents.dims,
        num_data=len(data_objects),
        num_features=len(feature_objects),
        num_feature_copies=num_copies,
        empty_shards=sum(1 for shard in shards if shard.is_empty),
        kind=shard_extents.kind,
    )
    return ShardingPlan(
        extent=extent,
        grid=shard_extents.grid,
        max_radius=max_radius,
        shards=shards,
        stats=stats,
        layout=shard_extents,
    )


__all__ = [
    "ShardDataset",
    "ShardingPlan",
    "ShardingStats",
    "partition_datasets",
    "shard_layout",
]
