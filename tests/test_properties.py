"""Property-based tests (hypothesis) for the core invariants.

The most important property of the whole reproduction is algorithm
equivalence: for *any* dataset, query and grid configuration, the three
distributed algorithms must return the same top-k score profile as the
centralized oracle.  Additional properties cover the Jaccard bound (Eq. 1),
grid geometry, Lemma 1 duplication, and the top-k list.
"""

from __future__ import annotations


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import duplication_factor, max_duplication_factor
from repro.core.centralized import CentralizedSPQ
from repro.core.engine import SPQEngine
from repro.model.objects import DataObject, FeatureObject
from repro.model.query import SpatialPreferenceQuery
from repro.model.result import TopKList
from repro.spatial.geometry import BoundingBox
from repro.spatial.grid import UniformGrid
from repro.spatial.partitioning import GridPartitioner
from repro.text.similarity import jaccard, jaccard_upper_bound, upper_bound_for_length

# --------------------------------------------------------------------- #
# strategies

WORDS = st.sampled_from([f"kw{i}" for i in range(12)])
KEYWORD_SETS = st.frozensets(WORDS, min_size=1, max_size=8)
COORDS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def datasets(draw, max_data=30, max_features=30):
    num_data = draw(st.integers(min_value=1, max_value=max_data))
    num_features = draw(st.integers(min_value=1, max_value=max_features))
    data = [
        DataObject(f"p{i}", draw(COORDS), draw(COORDS)) for i in range(num_data)
    ]
    features = [
        FeatureObject(f"f{i}", draw(COORDS), draw(COORDS), draw(KEYWORD_SETS))
        for i in range(num_features)
    ]
    return data, features


@st.composite
def queries(draw):
    k = draw(st.integers(min_value=1, max_value=5))
    radius = draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
    keywords = draw(KEYWORD_SETS)
    return SpatialPreferenceQuery(k=k, radius=radius, keywords=keywords)


# --------------------------------------------------------------------- #
# Jaccard and the length bound


class TestJaccardProperties:
    @given(left=KEYWORD_SETS, right=KEYWORD_SETS)
    def test_jaccard_in_unit_interval(self, left, right):
        assert 0.0 <= jaccard(left, right) <= 1.0

    @given(left=KEYWORD_SETS, right=KEYWORD_SETS)
    def test_jaccard_symmetric(self, left, right):
        assert jaccard(left, right) == pytest.approx(jaccard(right, left))

    @given(keywords=KEYWORD_SETS)
    def test_jaccard_identity(self, keywords):
        assert jaccard(keywords, keywords) == pytest.approx(1.0)

    @given(feature=KEYWORD_SETS, query=KEYWORD_SETS)
    def test_upper_bound_dominates_jaccard(self, feature, query):
        """Equation 1 is a true upper bound for any pair of keyword sets."""
        assert jaccard_upper_bound(feature, query) >= jaccard(feature, query) - 1e-12

    @given(query_len=st.integers(min_value=1, max_value=20))
    def test_upper_bound_monotone_in_feature_length(self, query_len):
        bounds = [upper_bound_for_length(n, query_len) for n in range(0, 40)]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))


# --------------------------------------------------------------------- #
# grid geometry and duplication


class TestGridProperties:
    @given(
        x=COORDS,
        y=COORDS,
        cells=st.integers(min_value=1, max_value=25),
    )
    def test_located_cell_contains_point(self, x, y, cells):
        grid = UniformGrid.square(BoundingBox(0, 0, 100, 100), cells)
        cell_id = grid.locate(x, y)
        assert grid.cell_box(cell_id).contains(x, y)

    @given(
        x=COORDS,
        y=COORDS,
        cells=st.integers(min_value=1, max_value=15),
        radius=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    )
    def test_lemma1_duplication_exact(self, x, y, cells, radius):
        """A feature is assigned to exactly the cells with MINDIST <= r."""
        grid = UniformGrid.square(BoundingBox(0, 0, 100, 100), cells)
        partitioner = GridPartitioner(grid, radius)
        assigned = set(partitioner.assign_feature_object(FeatureObject("f", x, y, {"kw0"})))
        expected = {
            cell_id
            for cell_id in range(1, grid.num_cells + 1)
            if grid.min_distance(cell_id, x, y) <= radius
        }
        assert assigned == expected

    @given(
        ratio=st.floats(min_value=2.0, max_value=1000.0, allow_nan=False),
    )
    def test_duplication_factor_bounds(self, ratio):
        factor = duplication_factor(cell_side=ratio, radius=1.0)
        assert 1.0 <= factor <= max_duplication_factor() + 1e-9


# --------------------------------------------------------------------- #
# TopKList invariants


class TestTopKProperties:
    @given(
        scores=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                        min_size=1, max_size=60),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_topk_matches_sorted_prefix(self, scores, k):
        top = TopKList(k)
        for index, score in enumerate(scores):
            top.offer(DataObject(f"o{index}", 0.0, 0.0), score)
        expected = sorted(scores, reverse=True)[:k]
        assert [entry.score for entry in top.top()] == pytest.approx(expected)

    @given(
        scores=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                        min_size=1, max_size=60),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_threshold_never_decreases(self, scores, k):
        top = TopKList(k)
        previous = 0.0
        for index, score in enumerate(scores):
            top.offer(DataObject(f"o{index}", 0.0, 0.0), score)
            assert top.threshold >= previous - 1e-12
            previous = top.threshold


# --------------------------------------------------------------------- #
# the headline property: algorithm equivalence


class TestAlgorithmEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(dataset=datasets(), query=queries(), grid_size=st.integers(min_value=1, max_value=6))
    def test_distributed_algorithms_match_oracle(self, dataset, query, grid_size):
        data, features = dataset
        oracle = CentralizedSPQ(data, features).evaluate_exhaustive(query)
        oracle_positive = [s for s in oracle.scores() if s > 0]
        engine = SPQEngine(data, features)
        for algorithm in ("pspq", "espq-len", "espq-sco"):
            result = engine.execute(query, algorithm=algorithm, grid_size=grid_size)
            scores = result.scores()
            # The distributed algorithms report every positively-scored object
            # of the true top-k, with identical scores, in the same order.
            assert scores[: len(oracle_positive)] == pytest.approx(oracle_positive)
            # And they never report anything beyond the true top-k scores.
            assert len(scores) <= query.k

    @settings(max_examples=25, deadline=None)
    @given(dataset=datasets(), query=queries(),
           grid_a=st.integers(min_value=1, max_value=5),
           grid_b=st.integers(min_value=6, max_value=12))
    def test_result_scores_invariant_to_grid_size(self, dataset, query, grid_a, grid_b):
        data, features = dataset
        engine = SPQEngine(data, features)
        first = engine.execute(query, algorithm="espq-sco", grid_size=grid_a)
        second = engine.execute(query, algorithm="espq-sco", grid_size=grid_b)
        assert first.scores() == pytest.approx(second.scores())

    @settings(max_examples=25, deadline=None)
    @given(dataset=datasets(), query=queries())
    def test_early_termination_never_examines_more_than_pspq(self, dataset, query):
        data, features = dataset
        engine = SPQEngine(data, features)
        pspq = engine.execute(query, algorithm="pspq", grid_size=4)
        sco = engine.execute(query, algorithm="espq-sco", grid_size=4)
        assert sco.stats["features_examined"] <= pspq.stats["features_examined"]
