"""Differential fuzzing: every execution strategy must agree with the oracle.

Seeded random datasets (uniform + clustered) crossed with seeded random
queries -- k, radius, keyword sets including zero-match and
everywhere-matching ("stop-word-only") extremes -- asserting that

* the three MapReduce algorithms (pSPQ, eSPQlen, eSPQsco) and the adaptive
  planner (``auto``) reproduce the centralized oracle's positively scored
  prefix: identical score sequences, every reported object's score exactly
  its ground-truth ``tau(p)``, and identical object ids whenever score ties
  leave the top-k composition well-defined (with ties, any maximal set of
  tied objects is a correct answer -- eSPQsco's Lemma 3 reports the first
  ``k`` found per cell, the oracle breaks ties by object id);
* ``execute_many`` is bit-for-bit identical (ids *and* scores, ties
  included) to per-query ``execute`` for every algorithm; and
* the true multiprocess backend is bit-for-bit identical to serial for a
  seeded subsample (kept small to bound runtime).

This is the regression net under every layer the engine grew (index-backed
batches, pluggable backends, the cost-based planner): any divergence in
shuffle ordering, early termination or result merging shows up here as a
concrete (dataset seed, query) counterexample.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.engine import EngineConfig, SPQEngine
from repro.core.scoring import compute_score
from repro.datagen.synthetic import (
    SyntheticDatasetConfig,
    generate_clustered,
    generate_uniform,
)
from repro.model.query import SpatialPreferenceQuery

MR_ALGORITHMS = ("pspq", "espq-len", "espq-sco")

#: (generator, dataset seed) pairs fuzzed below.
DATASETS = (
    ("uniform", 9001),
    ("uniform", 9002),
    ("clustered", 9101),
    ("clustered", 9102),
)

QUERIES_PER_DATASET = 6


def build_dataset(kind: str, seed: int):
    config = SyntheticDatasetConfig(
        num_objects=360,
        seed=seed,
        min_keywords=2,
        max_keywords=12,
        vocabulary_size=80,
    )
    generator = generate_uniform if kind == "uniform" else generate_clustered
    data, features = generator(config)
    # A "stop word" present in every feature: queries containing it match
    # the whole feature set, the opposite extreme of zero-match keywords.
    features = [
        type(feature)(
            oid=feature.oid,
            x=feature.x,
            y=feature.y,
            keywords=frozenset(feature.keywords | {"stop"}),
        )
        for feature in features
    ]
    return data, features


def build_queries(seed: int) -> List[SpatialPreferenceQuery]:
    """Seeded random queries spanning the parameter extremes."""
    rng = random.Random(seed)
    queries: List[SpatialPreferenceQuery] = []
    for index in range(QUERIES_PER_DATASET):
        k = rng.choice((1, 3, 10, 40))
        radius = rng.choice((0.0, 0.8, 4.0, 15.0, 70.0, 250.0))
        if index == 0:
            keywords = {"zz-nothing-matches"}      # zero-match
        elif index == 1:
            keywords = {"stop"}                    # matches every feature
        else:
            count = rng.choice((1, 2, 4, 7))
            keywords = {f"w{rng.randrange(80):04d}" for _ in range(count)}
            if rng.random() < 0.3:
                keywords.add("stop")
            if rng.random() < 0.2:
                keywords.add("zz-never")
        queries.append(
            SpatialPreferenceQuery.create(k=k, radius=radius, keywords=keywords)
        )
    return queries


def fingerprint(result) -> Tuple[Tuple[str, float], ...]:
    return tuple(zip(result.object_ids(), result.scores()))


def oracle_scores(data, features, query) -> Dict[str, float]:
    """Ground-truth ``tau(p)`` of every data object (exhaustive)."""
    return {
        obj.oid: compute_score(obj, features, query, "range") for obj in data
    }


def expected_prefix(truth: Dict[str, float], k: int) -> List[Tuple[str, float]]:
    """The oracle's positively scored top-k: (score desc, oid asc)."""
    ranked = sorted(
        ((oid, score) for oid, score in truth.items() if score > 0.0),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return ranked[:k]


def assert_matches_oracle(result, truth: Dict[str, float], k: int, label: str) -> None:
    """The oracle-equivalence contract (see module docstring)."""
    actual = fingerprint(result)
    expected = expected_prefix(truth, k)
    assert [score for _, score in actual] == pytest.approx(
        [score for _, score in expected]
    ), f"score sequence diverged: {label}"
    for oid, score in actual:
        assert score == pytest.approx(truth[oid]), (
            f"reported score is not the ground-truth tau({oid}): {label}"
        )
    # With all reported scores distinct and the k-th score unambiguous, the
    # top-k composition is unique, so the object ids must match exactly.
    scores = [score for _, score in expected]
    boundary_tied = len(expected) == k and any(
        score == pytest.approx(scores[-1]) and oid not in dict(expected)
        for oid, score in truth.items()
        if score > 0.0
    )
    if len(set(scores)) == len(scores) and not boundary_tied:
        assert [oid for oid, _ in actual] == [oid for oid, _ in expected], (
            f"object ids diverged without ties: {label}"
        )


def case_label(kind: str, seed: int, query: SpatialPreferenceQuery) -> str:
    return (
        f"{kind}/seed={seed} k={query.k} r={query.radius} "
        f"W={sorted(query.keywords)}"
    )


@pytest.mark.parametrize("kind,seed", DATASETS, ids=[f"{k}-{s}" for k, s in DATASETS])
class TestSerialDifferentialFuzz:
    """All strategies vs the exhaustive oracle on the serial backend."""

    @pytest.fixture()
    def setup(self, kind, seed):
        data, features = build_dataset(kind, seed)
        queries = build_queries(seed + 1)
        engine = SPQEngine(data, features)
        return data, features, queries, engine

    def test_all_algorithms_match_oracle(self, setup, kind, seed):
        data, features, queries, engine = setup
        for grid_size, query in zip((4, 7, 12, 4, 7, 12), queries):
            truth = oracle_scores(data, features, query)
            label = case_label(kind, seed, query)
            for algorithm in MR_ALGORITHMS:
                result = engine.execute(query, algorithm=algorithm, grid_size=grid_size)
                assert_matches_oracle(
                    result, truth, query.k, f"{algorithm} on {label} (grid {grid_size})"
                )

    def test_execute_many_matches_sequential(self, setup, kind, seed):
        data, features, queries, engine = setup
        for algorithm in MR_ALGORITHMS:
            sequential = [
                fingerprint(engine.execute(query, algorithm=algorithm, grid_size=6))
                for query in queries
            ]
            batched = [
                fingerprint(result)
                for result in engine.execute_many(queries, algorithm=algorithm, grid_size=6)
            ]
            assert batched == sequential, f"{algorithm} batch != sequential ({kind}/{seed})"

    def test_auto_matches_oracle(self, setup, kind, seed):
        data, features, queries, engine = setup
        for query in queries:
            truth = oracle_scores(data, features, query)
            result = engine.execute(query, algorithm="auto", grid_size=6)
            assert_matches_oracle(
                result,
                truth,
                query.k,
                f"auto ({result.stats['planned_algorithm']}) on "
                f"{case_label(kind, seed, query)}",
            )
            # Bit-for-bit against an explicit run of the chosen algorithm:
            # planning must never change the answer, ties included.
            chosen = result.stats["planned_algorithm"]
            explicit = engine.execute_many([query], algorithm=chosen, grid_size=6)[0]
            assert fingerprint(result) == fingerprint(explicit)


class TestProcessBackendDifferentialFuzz:
    """A seeded subsample re-run on the true multiprocess backend."""

    @pytest.mark.parametrize("kind,seed", (("uniform", 9001), ("clustered", 9101)))
    def test_process_backend_matches_serial(self, kind, seed):
        data, features = build_dataset(kind, seed)
        queries = build_queries(seed + 1)[:3]
        serial_engine = SPQEngine(data, features)
        reference = {
            algorithm: [
                fingerprint(result)
                for result in serial_engine.execute_many(
                    queries, algorithm=algorithm, grid_size=5
                )
            ]
            for algorithm in MR_ALGORITHMS
        }
        config = EngineConfig(backend="process", workers=2)
        with SPQEngine(data, features, config=config) as engine:
            for algorithm in MR_ALGORITHMS:
                results = engine.execute_many(queries, algorithm=algorithm, grid_size=5)
                assert [fingerprint(r) for r in results] == reference[algorithm], (
                    f"{algorithm} differs between process and serial backends "
                    f"({kind}/{seed})"
                )


class TestIngestParityFuzz:
    """Randomized append/delete/query interleavings vs the bulk-swap oracle.

    After every mutation step, the delta-serving engine must answer
    **bit-for-bit** like a fresh engine bulk-swapped to the final state --
    ids and scores, ties included -- with the extent pinned (incremental
    appends may not widen the served extent, so neither may the oracle's).
    ``auto`` is compared via the planner's chosen algorithm: the delta
    engine plans on base statistics while the oracle sees final statistics,
    so the decision itself may differ, but the chosen plan's *answer* must
    not.  Both dataplanes are fuzzed: tombstones force the columnar plane
    onto its filtered per-entry fallback, which must stay exact.
    """

    CHECK_QUERIES = 3
    MUTATION_STEPS = 10

    @pytest.mark.parametrize("dataplane", ("object", "columnar"))
    @pytest.mark.parametrize("kind,seed", (("uniform", 9001), ("clustered", 9102)))
    def test_interleaved_ops_match_bulk_swap(
        self, kind, seed, dataplane, monkeypatch
    ):
        from repro.model.objects import DataObject, FeatureObject

        monkeypatch.setenv("REPRO_DATAPLANE", dataplane)
        data, features = build_dataset(kind, seed)
        rng = random.Random(seed + 77)
        queries = build_queries(seed + 1)
        with SPQEngine(data, features, config=EngineConfig(grid_size=6)) as engine:
            extent = engine.extent
            live_data = {obj.oid for obj in data}
            live_features = {feature.oid for feature in features}
            for step in range(self.MUTATION_STEPS):
                op = rng.choice(("append", "append", "delete", "mixed"))
                append_data, append_features = [], []
                delete_data, delete_features = [], []
                if op in ("append", "mixed"):
                    for _ in range(rng.randrange(1, 4)):
                        oid = f"fz-d{step}-{rng.randrange(10_000)}"
                        if oid in live_data:
                            continue
                        append_data.append(DataObject(
                            oid=oid,
                            x=rng.uniform(extent.min_x, extent.max_x),
                            y=rng.uniform(extent.min_y, extent.max_y),
                        ))
                    oid = f"fz-f{step}-{rng.randrange(10_000)}"
                    if oid not in live_features:
                        append_features.append(FeatureObject(
                            oid=oid,
                            x=rng.uniform(extent.min_x, extent.max_x),
                            y=rng.uniform(extent.min_y, extent.max_y),
                            keywords=frozenset(
                                {f"w{rng.randrange(80):04d}", "stop"}
                            ),
                        ))
                if op in ("delete", "mixed"):
                    delete_data = rng.sample(sorted(live_data), 2)
                    delete_features = rng.sample(sorted(live_features), 3)
                engine.apply_updates(
                    append_data=append_data,
                    append_features=append_features,
                    delete_data_oids=delete_data,
                    delete_feature_oids=delete_features,
                )
                live_data = (live_data - set(delete_data)) | {
                    obj.oid for obj in append_data
                }
                live_features = (live_features - set(delete_features)) | {
                    obj.oid for obj in append_features
                }
                if step % 3 != 2 and step != self.MUTATION_STEPS - 1:
                    continue
                final_data, final_features = engine.materialize_datasets()
                with SPQEngine(
                    final_data, final_features,
                    config=EngineConfig(grid_size=6), extent=extent,
                ) as oracle:
                    for query in rng.sample(queries, self.CHECK_QUERIES):
                        for algorithm in MR_ALGORITHMS:
                            got = engine.execute(
                                query, algorithm=algorithm, grid_size=6
                            )
                            want = oracle.execute(
                                query, algorithm=algorithm, grid_size=6
                            )
                            assert fingerprint(got) == fingerprint(want), (
                                f"{algorithm} diverged at step {step} "
                                f"({kind}/{seed}, {dataplane})"
                            )
                        auto = engine.execute(query, algorithm="auto", grid_size=6)
                        chosen = auto.stats["planned_algorithm"]
                        want = oracle.execute(
                            query, algorithm=chosen, grid_size=6
                        )
                        assert fingerprint(auto) == fingerprint(want), (
                            f"auto ({chosen}) diverged at step {step} "
                            f"({kind}/{seed}, {dataplane})"
                        )


class TestSkewLayoutParityFuzz:
    """Randomized rebalances interleaved with queries and ingest.

    A 4-shard router starts on a skew layout, then a seeded schedule of
    incremental write batches, live ``rebalance()`` calls (flipping between
    skew and uniform layouts) and checkpoint queries runs against it.  At
    every checkpoint the router must answer **bit-for-bit** like a fresh
    unsharded engine bulk-swapped to the current state -- ids and scores,
    ties included -- with the extent pinned (rebalances pin the extent, so
    neither may the oracle's drift).  This is the live-rebalancing twin of
    :class:`TestIngestParityFuzz`: layout changes move *work*, never
    *answers*.  ``auto`` is compared through the router's agreed planned
    algorithm when the shards converge on one (shards plan on shard-local
    statistics, so the decision may legitimately differ from the oracle's).
    """

    CHECK_QUERIES = 3
    MUTATION_STEPS = 10
    GRID = 6

    @pytest.mark.parametrize("kind,seed", (("clustered", 9102), ("uniform", 9001)))
    def test_interleaved_rebalances_match_bulk_swap(self, kind, seed):
        from repro.core.engine import EngineConfig, SPQEngine
        from repro.model.objects import DataObject, FeatureObject
        from repro.server import ServiceConfig
        from repro.sharding import ShardRouter, ShardingConfig

        data, features = build_dataset(kind, seed)
        rng = random.Random(seed + 177)
        queries = build_queries(seed + 1)
        grid = self.GRID
        router = ShardRouter(
            data, features,
            engine_config=EngineConfig(grid_size=grid),
            service_config=ServiceConfig(
                engines=1, default_grid_size=grid, result_cache_capacity=0
            ),
            sharding=ShardingConfig(shards=4, layout="skew",
                                    layout_resolution=grid),
        )
        with router:
            extent = router.plan.extent
            # The bulk-swap mirror: surviving objects in storage order,
            # appends at the tail -- exactly ``materialize``'s order, which
            # rebalancing re-bases but never reorders.
            live_data = list(data)
            live_features = list(features)
            rebalances = 0
            for step in range(self.MUTATION_STEPS):
                if rng.random() < 0.5:
                    layout = rng.choice(("skew", "uniform"))
                    info = router.rebalance(layout)
                    rebalances += 1
                    assert info["layout"] == layout
                    assert sum(info["data_share"]) == pytest.approx(1.0)
                append_data, append_features = [], []
                delete_data, delete_features = [], []
                live_data_oids = {obj.oid for obj in live_data}
                live_feature_oids = {obj.oid for obj in live_features}
                if rng.random() < 0.8:
                    for _ in range(rng.randrange(1, 4)):
                        oid = f"rb-d{step}-{rng.randrange(10_000)}"
                        if oid in live_data_oids:
                            continue
                        append_data.append(DataObject(
                            oid=oid,
                            x=rng.uniform(extent.min_x, extent.max_x),
                            y=rng.uniform(extent.min_y, extent.max_y),
                        ))
                    oid = f"rb-f{step}-{rng.randrange(10_000)}"
                    if oid not in live_feature_oids:
                        append_features.append(FeatureObject(
                            oid=oid,
                            x=rng.uniform(extent.min_x, extent.max_x),
                            y=rng.uniform(extent.min_y, extent.max_y),
                            keywords=frozenset(
                                {f"w{rng.randrange(80):04d}", "stop"}
                            ),
                        ))
                if rng.random() < 0.5:
                    delete_data = rng.sample(sorted(live_data_oids), 2)
                    delete_features = rng.sample(sorted(live_feature_oids), 2)
                router.apply_objects(
                    append_data=append_data,
                    append_features=append_features,
                    delete_data_oids=delete_data,
                    delete_feature_oids=delete_features,
                )
                live_data = [
                    obj for obj in live_data if obj.oid not in set(delete_data)
                ] + append_data
                live_features = [
                    obj for obj in live_features
                    if obj.oid not in set(delete_features)
                ] + append_features
                if step % 3 != 2 and step != self.MUTATION_STEPS - 1:
                    continue
                with SPQEngine(
                    live_data, live_features,
                    config=EngineConfig(grid_size=grid), extent=extent,
                ) as oracle:
                    for query in rng.sample(queries, self.CHECK_QUERIES):
                        spec = {
                            "keywords": sorted(query.keywords),
                            "k": query.k,
                            "radius": query.radius,
                            "grid_size": grid,
                        }
                        for algorithm in MR_ALGORITHMS:
                            response = router.submit(
                                {**spec, "algorithm": algorithm}
                            )
                            got = tuple(
                                (e["oid"], e["score"])
                                for e in response["results"]
                            )
                            want = fingerprint(oracle.execute(
                                query, algorithm=algorithm, grid_size=grid
                            ))
                            assert got == want, (
                                f"{algorithm} diverged at step {step} "
                                f"({kind}/{seed}, rebalances={rebalances})"
                            )
                        auto = router.submit({**spec, "algorithm": "auto"})
                        chosen = auto.get("planned_algorithm")
                        if chosen:  # every shard agreed on one plan
                            got = tuple(
                                (e["oid"], e["score"])
                                for e in auto["results"]
                            )
                            want = fingerprint(oracle.execute(
                                query, algorithm=chosen, grid_size=grid
                            ))
                            assert got == want, (
                                f"auto ({chosen}) diverged at step {step} "
                                f"({kind}/{seed})"
                            )
            assert router.stats()["sharding"]["balance"]["rebalances"] == (
                rebalances
            )


class TestDataplaneParity:
    """Columnar reduce paths vs the per-object oracle, bit-for-bit.

    ``REPRO_DATAPLANE=object`` forces the original per-object loops the
    columnar hot paths replaced; every algorithm must agree across the two
    planes on ids, scores *and* counters -- the counters feed the planner's
    calibration, so the columnar plane must also preserve the cost model's
    accounting exactly.
    """

    @pytest.mark.parametrize("kind,seed", DATASETS)
    def test_columnar_is_bit_for_bit_identical(self, kind, seed, monkeypatch):
        data, features = build_dataset(kind, seed)
        queries = build_queries(seed + 31)

        def run(mode: str):
            monkeypatch.setenv("REPRO_DATAPLANE", mode)
            snapshots = []
            with SPQEngine(data, features, config=EngineConfig(grid_size=6)) as engine:
                for algorithm in MR_ALGORITHMS:
                    for result in engine.execute_many(
                        queries, algorithm=algorithm, grid_size=6
                    ):
                        snapshots.append(
                            (fingerprint(result), result.stats["counters"])
                        )
            return snapshots

        oracle = run("object")
        columnar = run("columnar")
        for index, (want, got) in enumerate(zip(oracle, columnar)):
            assert got == want, f"dataplane divergence at run {index}"
