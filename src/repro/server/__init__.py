"""Persistent query service layer (``repro serve``).

The online front-end over the batch-oriented SPQ engine stack: a
:class:`~repro.server.service.QueryService` holds a warm pool of engines
sharing one index cache and one planner, micro-batches concurrent requests
into ``execute_many``, memoises responses in an LRU keyed by
``(dataset_version, canonical query)``, and persists planner calibration
across restarts.  :mod:`repro.server.http` exposes it over stdlib HTTP.

See ``docs/service.md`` for the quickstart and protocol reference.
"""

from repro.server.admission import AdmissionController, shed_payload
from repro.server.batching import MicroBatcher, PendingRequest
from repro.server.cache import ResultCache, ResultCacheStats
from repro.server.http import QueryHTTPServer, make_server
from repro.server.metrics import LatencyHistogram
from repro.server.protocol import (
    ParsedRequest,
    RequestDefaults,
    parse_query_spec,
    result_payload,
)
from repro.server.service import QueryService, ServiceConfig

__all__ = [
    "AdmissionController",
    "LatencyHistogram",
    "MicroBatcher",
    "ParsedRequest",
    "PendingRequest",
    "QueryHTTPServer",
    "QueryService",
    "RequestDefaults",
    "ResultCache",
    "ResultCacheStats",
    "ServiceConfig",
    "make_server",
    "parse_query_spec",
    "result_payload",
    "shed_payload",
]
