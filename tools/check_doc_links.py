#!/usr/bin/env python
"""Fail on broken intra-repo markdown links (the CI ``docs`` job).

Scans the given markdown files/directories for inline links and images
(``[text](target)`` / ``![alt](target)``), resolves every *relative*
target against the containing file's directory, and exits non-zero if any
resolved path does not exist.  External links (``http(s)://``,
``mailto:``) and pure-fragment links (``#section``) are ignored; a
fragment on a relative link is stripped before the existence check, so
``service.md#post-datasets`` validates the file, not the anchor.

Usage::

    python tools/check_doc_links.py README.md docs

Stdlib only, so the CI job needs no installation step beyond a checkout.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link/image: [text](target) with no nested parentheses.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Target prefixes that are not intra-repo file references.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown_files(paths: Iterable[str]) -> List[Path]:
    """Expand the given files/directories into a sorted list of .md files.

    Raises:
        FileNotFoundError: when an argument does not exist at all.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def strip_code(text: str) -> str:
    """Remove fenced and inline code spans (links inside them are examples)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def broken_links(markdown_file: Path) -> List[Tuple[str, str]]:
    """(target, reason) for every broken relative link in one file."""
    failures: List[Tuple[str, str]] = []
    text = strip_code(markdown_file.read_text(encoding="utf-8"))
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (markdown_file.parent / path_part).resolve()
        if not resolved.exists():
            failures.append((target, f"resolves to missing {resolved}"))
    return failures


def main(argv=None) -> int:
    """Check every argument; print failures and return 1 if any."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="+",
        help="markdown files and/or directories to scan recursively",
    )
    args = parser.parse_args(argv)

    try:
        files = iter_markdown_files(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    total_failures = 0
    for markdown_file in files:
        failures = broken_links(markdown_file)
        total_failures += len(failures)
        for target, reason in failures:
            print(f"BROKEN {markdown_file}: ({target}) {reason}", file=sys.stderr)
    if total_failures:
        print(f"{total_failures} broken link(s) across {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
