"""Cost-based adaptive query planner (``algorithm="auto"``).

See :mod:`repro.planner.core` for the full story: an a-priori cost
estimator over :class:`~repro.index.dataset_index.DatasetIndex` statistics
(:mod:`repro.planner.estimator`) plus a bounded-memory calibration loop
(:mod:`repro.planner.calibration`), owned by each
:class:`~repro.core.engine.SPQEngine` and exposed through
``algorithm="auto"`` at every layer (engine, batch API, CLI).
"""

from repro.planner.calibration import Calibrator, signature_of
from repro.planner.persistence import (
    CALIBRATION_FORMAT,
    CALIBRATION_VERSION,
    load_calibration,
    restore_calibration,
    save_calibration,
    scoped_calibration_path,
    try_restore_calibration,
)
from repro.planner.core import (
    AUTO_ALGORITHM,
    ENV_PLANNER,
    PLANNER_MODES,
    PlannerConfig,
    PlannerDecision,
    QueryPlanner,
    resolve_planner_mode,
)
from repro.planner.estimator import (
    DEFAULT_WORK_FACTORS,
    PLANNED_ALGORITHMS,
    CostEstimator,
    QueryStatistics,
    WorkFactors,
    collect_statistics,
)

__all__ = [
    "AUTO_ALGORITHM",
    "CALIBRATION_FORMAT",
    "CALIBRATION_VERSION",
    "Calibrator",
    "CostEstimator",
    "DEFAULT_WORK_FACTORS",
    "ENV_PLANNER",
    "PLANNED_ALGORITHMS",
    "PLANNER_MODES",
    "PlannerConfig",
    "PlannerDecision",
    "QueryPlanner",
    "QueryStatistics",
    "WorkFactors",
    "collect_statistics",
    "load_calibration",
    "resolve_planner_mode",
    "restore_calibration",
    "save_calibration",
    "scoped_calibration_path",
    "signature_of",
    "try_restore_calibration",
]
