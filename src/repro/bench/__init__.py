"""Benchmark harness: parameter sweeps regenerating the paper's figures.

The paper's evaluation (Section 7) varies five parameters (Table 3): grid
size, number of query keywords, query radius (as a fraction of the cell side),
``k`` and dataset size, over four datasets (FL, TW, UN, CL), and reports the
MapReduce job execution time for each of the three algorithms.  This package
provides:

* :class:`~repro.bench.harness.ExperimentSpec` / :func:`~repro.bench.harness.run_sweep`
  -- generic one-parameter sweeps over the three algorithms,
* :mod:`repro.bench.experiments` -- one function per figure of the paper,
* formatting helpers producing the tables recorded in ``EXPERIMENTS.md``.
"""

from repro.bench.harness import (
    ExperimentSpec,
    SweepResult,
    format_series_table,
    run_sweep,
)
from repro.bench.reporting import ascii_chart, compare_load_balance, load_balance
from repro.bench import experiments

__all__ = [
    "ExperimentSpec",
    "SweepResult",
    "run_sweep",
    "format_series_table",
    "ascii_chart",
    "load_balance",
    "compare_load_balance",
    "experiments",
]
