"""A from-scratch, in-process MapReduce engine with an HDFS-style storage model.

The paper implements its algorithms as single Hadoop MapReduce jobs that rely
on three framework hooks (Section 2.1):

* key-value records with *composite keys*,
* a custom ``Partitioner`` that routes map output to reducers based on part of
  the key (the grid cell id), and
* a custom sort ``Comparator`` that orders the values seen by each reducer
  (data objects before feature objects; feature objects by keyword length or
  by decreasing score).

This package reproduces those hooks faithfully so the three SPQ algorithms can
be expressed exactly as in the paper, and adds a simulated HDFS + cluster so
experiments can report a *simulated job execution time* with the same shape as
the paper's wall-clock measurements.
"""

from repro.mapreduce.counters import Counters
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import (
    FieldPartitioner,
    HashPartitioner,
    Partitioner,
)
from repro.mapreduce.runtime import JobResult, LocalJobRunner, ReduceTaskReport
from repro.mapreduce.hdfs import HDFS, HDFSFile, Block, DataNode
from repro.mapreduce.cluster import ClusterNode, SimulatedCluster
from repro.mapreduce.costmodel import CostModel, CostParameters

__all__ = [
    "MapReduceJob",
    "Counters",
    "Partitioner",
    "HashPartitioner",
    "FieldPartitioner",
    "LocalJobRunner",
    "JobResult",
    "ReduceTaskReport",
    "HDFS",
    "HDFSFile",
    "Block",
    "DataNode",
    "SimulatedCluster",
    "ClusterNode",
    "CostModel",
    "CostParameters",
]
