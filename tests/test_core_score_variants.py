"""Tests for the influence / nearest score-variant extensions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.centralized import CentralizedSPQ
from repro.core.engine import SPQEngine
from repro.core.scoring import SCORE_MODES, compute_score, feature_contribution
from repro.exceptions import InvalidQueryError
from repro.model.objects import DataObject, FeatureObject
from repro.model.query import SpatialPreferenceQuery

WORDS = st.sampled_from([f"kw{i}" for i in range(8)])
COORDS = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@pytest.fixture()
def query():
    return SpatialPreferenceQuery.create(k=3, radius=2.0, keywords={"a", "b"})


class TestFeatureContribution:
    def test_modes_constant(self):
        assert set(SCORE_MODES) == {"range", "influence", "nearest"}

    def test_unknown_mode_rejected(self, query):
        with pytest.raises(ValueError):
            feature_contribution(
                DataObject("p", 0, 0), FeatureObject("f", 1, 0, {"a"}), query, mode="cosine"
            )

    def test_range_contribution_inside_radius(self, query):
        value = feature_contribution(
            DataObject("p", 0, 0), FeatureObject("f", 1, 0, {"a"}), query, mode="range"
        )
        assert value == pytest.approx(0.5)

    def test_contribution_zero_outside_radius_in_all_modes(self, query):
        obj = DataObject("p", 0, 0)
        feature = FeatureObject("f", 10, 0, {"a", "b"})
        assert feature_contribution(obj, feature, query, "range") == 0.0
        assert feature_contribution(obj, feature, query, "influence") == 0.0

    def test_influence_decays_with_distance(self, query):
        obj = DataObject("p", 0, 0)
        near = FeatureObject("near", 0.5, 0, {"a", "b"})
        far = FeatureObject("far", 1.9, 0, {"a", "b"})
        assert feature_contribution(obj, near, query, "influence") > feature_contribution(
            obj, far, query, "influence"
        )

    def test_influence_at_zero_distance_equals_textual_score(self, query):
        obj = DataObject("p", 1.0, 1.0)
        feature = FeatureObject("f", 1.0, 1.0, {"a", "b"})
        assert feature_contribution(obj, feature, query, "influence") == pytest.approx(1.0)

    def test_influence_bounded_by_range_score(self, query):
        obj = DataObject("p", 0, 0)
        feature = FeatureObject("f", 1.5, 0, {"a"})
        assert feature_contribution(obj, feature, query, "influence") <= feature_contribution(
            obj, feature, query, "range"
        )

    def test_influence_requires_positive_radius(self):
        query = SpatialPreferenceQuery.create(k=1, radius=0.0, keywords={"a"})
        obj = DataObject("p", 0, 0)
        feature = FeatureObject("f", 0, 0, {"a"})
        with pytest.raises(ValueError):
            feature_contribution(obj, feature, query, "influence")


class TestComputeScoreVariants:
    def test_nearest_uses_only_closest_feature(self, query):
        obj = DataObject("p", 0, 0)
        features = [
            FeatureObject("close-bad", 0.5, 0, {"zzz"}),      # nearest, irrelevant
            FeatureObject("far-good", 1.5, 0, {"a", "b"}),    # further, perfect match
        ]
        assert compute_score(obj, features, query, mode="nearest") == 0.0
        assert compute_score(obj, features, query, mode="range") == pytest.approx(1.0)

    def test_nearest_out_of_range_scores_zero(self, query):
        obj = DataObject("p", 0, 0)
        features = [FeatureObject("f", 50, 50, {"a"})]
        assert compute_score(obj, features, query, mode="nearest") == 0.0

    def test_nearest_with_no_features(self, query):
        assert compute_score(DataObject("p", 0, 0), [], query, mode="nearest") == 0.0

    def test_influence_score_is_max_over_contributions(self, query):
        obj = DataObject("p", 0, 0)
        features = [
            FeatureObject("f1", 1.0, 0, {"a"}),        # 0.5 * 2^-0.5
            FeatureObject("f2", 0.2, 0, {"a", "b"}),   # 1.0 * 2^-0.1
        ]
        expected = max(
            feature_contribution(obj, f, query, "influence") for f in features
        )
        assert compute_score(obj, features, query, mode="influence") == pytest.approx(expected)


class TestEngineScoreModes:
    @pytest.fixture()
    def engine(self, paper_data_objects, paper_feature_objects):
        return SPQEngine(paper_data_objects, paper_feature_objects)

    def test_espq_algorithms_reject_non_range_modes(self, engine, paper_query):
        with pytest.raises(InvalidQueryError):
            engine.execute(paper_query, algorithm="espq-sco", score_mode="influence")

    def test_nearest_mode_requires_centralized(self, engine, paper_query):
        with pytest.raises(InvalidQueryError):
            engine.execute(paper_query, algorithm="pspq", score_mode="nearest")

    def test_pspq_influence_matches_centralized_oracle(
        self, paper_data_objects, paper_feature_objects
    ):
        query = SpatialPreferenceQuery.create(k=3, radius=1.5, keywords={"italian"})
        engine = SPQEngine(paper_data_objects, paper_feature_objects)
        oracle = CentralizedSPQ(paper_data_objects, paper_feature_objects).evaluate_exhaustive(
            query, mode="influence"
        )
        oracle_positive = [s for s in oracle.scores() if s > 0]
        result = engine.execute(query, algorithm="pspq", grid_size=4, score_mode="influence")
        assert result.scores()[: len(oracle_positive)] == pytest.approx(oracle_positive)

    def test_centralized_nearest_through_engine(self, engine, paper_query):
        result = engine.execute(paper_query, algorithm="centralized", score_mode="nearest")
        assert result.stats["score_mode"] == "nearest"

    @settings(max_examples=25, deadline=None)
    @given(
        num_data=st.integers(min_value=1, max_value=20),
        num_features=st.integers(min_value=1, max_value=20),
        data=st.data(),
        k=st.integers(min_value=1, max_value=4),
        radius=st.floats(min_value=0.5, max_value=25.0, allow_nan=False),
        keywords=st.frozensets(WORDS, min_size=1, max_size=3),
        grid_size=st.integers(min_value=1, max_value=5),
    )
    def test_pspq_influence_equivalence_property(
        self, num_data, num_features, data, k, radius, keywords, grid_size
    ):
        data_objects = [
            DataObject(f"p{i}", data.draw(COORDS), data.draw(COORDS)) for i in range(num_data)
        ]
        features = [
            FeatureObject(
                f"f{i}", data.draw(COORDS), data.draw(COORDS),
                data.draw(st.frozensets(WORDS, min_size=1, max_size=4)),
            )
            for i in range(num_features)
        ]
        query = SpatialPreferenceQuery(k=k, radius=radius, keywords=keywords)
        oracle = CentralizedSPQ(data_objects, features).evaluate_exhaustive(
            query, mode="influence"
        )
        oracle_positive = [s for s in oracle.scores() if s > 0]
        engine = SPQEngine(data_objects, features)
        result = engine.execute(
            query, algorithm="pspq", grid_size=grid_size, score_mode="influence"
        )
        assert result.scores()[: len(oracle_positive)] == pytest.approx(oracle_positive)
