"""Regular uniform grid over the 2-d data space (paper Section 4.1).

The grid is defined at query time, once the radius ``r`` is known.  It divides
the dataset extent into ``cells_x * cells_y`` equal cells, identified by a
single integer id (row-major, starting at 1 to match the paper's Figure 2
numbering).  Each cell corresponds to one Reduce task.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.exceptions import InvalidGridError
from repro.spatial.geometry import BoundingBox


@dataclass(frozen=True)
class GridCell:
    """One grid cell: its integer id, (col, row) position and bounding box."""

    cell_id: int
    col: int
    row: int
    box: BoundingBox


class UniformGrid:
    """A regular, uniform grid partitioning of a rectangular extent.

    Args:
        extent: Bounding box of the data space.
        cells_x: Number of columns (``> 0``).
        cells_y: Number of rows (``> 0``); defaults to ``cells_x`` for the
            square grids used throughout the paper (e.g. "grid size 50"
            means a 50x50 grid).
    """

    def __init__(self, extent: BoundingBox, cells_x: int, cells_y: int | None = None) -> None:
        cells_y = cells_x if cells_y is None else cells_y
        if cells_x < 1 or cells_y < 1:
            raise InvalidGridError(f"grid must have >= 1 cell per axis, got {cells_x}x{cells_y}")
        if extent.width <= 0 or extent.height <= 0:
            raise InvalidGridError("grid extent must have positive width and height")
        self.extent = extent
        self.cells_x = cells_x
        self.cells_y = cells_y
        self.cell_width = extent.width / cells_x
        self.cell_height = extent.height / cells_y
        # Per-axis cell bounds, filled lazily by _axis_bounds(): building one
        # BoundingBox per MINDIST probe is what made neighbours_within hot.
        self._bounds: "Tuple[array, array, array, array] | None" = None

    # ------------------------------------------------------------------ #
    # identification

    @property
    def num_cells(self) -> int:
        """Total number of cells ``R`` (== number of Reduce tasks)."""
        return self.cells_x * self.cells_y

    def cell_id(self, col: int, row: int) -> int:
        """Row-major cell id, starting at 1 (bottom-left cell is 1)."""
        if not (0 <= col < self.cells_x and 0 <= row < self.cells_y):
            raise InvalidGridError(
                f"cell ({col}, {row}) outside {self.cells_x}x{self.cells_y} grid"
            )
        return row * self.cells_x + col + 1

    def cell_position(self, cell_id: int) -> Tuple[int, int]:
        """Inverse of :meth:`cell_id`: return ``(col, row)``."""
        if not (1 <= cell_id <= self.num_cells):
            raise InvalidGridError(f"cell id {cell_id} outside grid with {self.num_cells} cells")
        index = cell_id - 1
        return (index % self.cells_x, index // self.cells_x)

    def cell_box(self, cell_id: int) -> BoundingBox:
        """Bounding box of the given cell.

        The last column/row snaps to the extent boundary so the cells tile
        the extent exactly: a point :meth:`locate` clamps into the last cell
        (e.g. exactly on the maximum boundary) is always contained in that
        cell's box, which ``min + width`` arithmetic cannot guarantee under
        floating point.
        """
        col, row = self.cell_position(cell_id)
        extent = self.extent
        min_x = extent.min_x + col * self.cell_width
        min_y = extent.min_y + row * self.cell_height
        max_x = (
            extent.max_x
            if col == self.cells_x - 1
            else extent.min_x + (col + 1) * self.cell_width
        )
        max_y = (
            extent.max_y
            if row == self.cells_y - 1
            else extent.min_y + (row + 1) * self.cell_height
        )
        return BoundingBox(min_x, min_y, max_x, max_y)

    def cell(self, cell_id: int) -> GridCell:
        """Full :class:`GridCell` record for a cell id."""
        col, row = self.cell_position(cell_id)
        return GridCell(cell_id=cell_id, col=col, row=row, box=self.cell_box(cell_id))

    def cells(self) -> Iterator[GridCell]:
        """Iterate over every cell of the grid in id order."""
        for cell_id in range(1, self.num_cells + 1):
            yield self.cell(cell_id)

    # ------------------------------------------------------------------ #
    # point location

    def locate(self, x: float, y: float) -> int:
        """Id of the cell enclosing point ``(x, y)``.

        Points exactly on the maximum boundary of the extent are clamped into
        the last cell, and points slightly outside the extent are clamped to
        the nearest boundary cell; this mirrors how partitioners in practice
        must place every record somewhere.
        """
        col = int((x - self.extent.min_x) / self.cell_width)
        row = int((y - self.extent.min_y) / self.cell_height)
        col = min(max(col, 0), self.cells_x - 1)
        row = min(max(row, 0), self.cells_y - 1)
        return self.cell_id(col, row)

    def locate_many(self, xs: Sequence[float], ys: Sequence[float]) -> "array":
        """Cell ids of many points at once (columnar :meth:`locate`).

        Same arithmetic and clamping as :meth:`locate`, without the
        per-point method call and cell-id validation -- the clamped
        ``(col, row)`` is always inside the grid by construction.
        """
        min_x = self.extent.min_x
        min_y = self.extent.min_y
        cell_width = self.cell_width
        cell_height = self.cell_height
        max_col = self.cells_x - 1
        max_row = self.cells_y - 1
        cells_x = self.cells_x
        out = array("I", bytes(4 * len(xs)))
        for index, (x, y) in enumerate(zip(xs, ys)):
            col = int((x - min_x) / cell_width)
            row = int((y - min_y) / cell_height)
            if col < 0:
                col = 0
            elif col > max_col:
                col = max_col
            if row < 0:
                row = 0
            elif row > max_row:
                row = max_row
            out[index] = row * cells_x + col + 1
        return out

    def min_distance(self, cell_id: int, x: float, y: float) -> float:
        """``MINDIST`` between a point and a cell (0 if the point is inside)."""
        return self.cell_box(cell_id).min_distance(x, y)

    def _axis_bounds(self) -> Tuple["array", "array", "array", "array"]:
        """Per-column/per-row cell bounds, with :meth:`cell_box` arithmetic.

        Built lazily once per grid (idempotent, so a benign build race
        between engines sharing the grid is harmless) and reused by every
        :meth:`neighbours_within` probe instead of constructing one
        :class:`BoundingBox` per candidate cell.
        """
        bounds = self._bounds
        if bounds is None:
            extent = self.extent
            col_min = array(
                "d", (extent.min_x + col * self.cell_width for col in range(self.cells_x))
            )
            col_max = array(
                "d",
                (
                    extent.max_x
                    if col == self.cells_x - 1
                    else extent.min_x + (col + 1) * self.cell_width
                    for col in range(self.cells_x)
                ),
            )
            row_min = array(
                "d", (extent.min_y + row * self.cell_height for row in range(self.cells_y))
            )
            row_max = array(
                "d",
                (
                    extent.max_y
                    if row == self.cells_y - 1
                    else extent.min_y + (row + 1) * self.cell_height
                    for row in range(self.cells_y)
                ),
            )
            bounds = self._bounds = (col_min, col_max, row_min, row_max)
        return bounds

    def neighbours_within(
        self, x: float, y: float, radius: float, home: int | None = None
    ) -> List[int]:
        """Ids of cells other than the enclosing one with ``MINDIST <= radius``.

        This is the duplication rule of Lemma 1: a feature object at ``(x, y)``
        must additionally be assigned to every returned cell.  Only cells in a
        window of ``ceil(radius / cell_side)`` cells around the enclosing cell
        can qualify, so the search is restricted to that window.

        Callers that already located the point may pass the enclosing cell id
        as ``home`` to skip the redundant :meth:`locate`.

        The MINDIST probe runs over the cached per-axis bounds with the exact
        component arithmetic of :meth:`BoundingBox.min_distance` -- same
        ``dx``/``dy`` doubles, same ``hypot(dx, dy) <= radius`` comparison --
        so the returned duplication lists are bit-for-bit those of the
        per-box path (``hypot(d, 0) == abs(d)`` and ``hypot >= max(dx, dy)``
        justify the componentwise shortcuts).
        """
        if radius < 0:
            raise InvalidGridError(f"radius must be >= 0, got {radius}")
        if home is None:
            home = self.locate(x, y)
        home_col, home_row = self.cell_position(home)
        reach_x = int(radius / self.cell_width) + 1
        reach_y = int(radius / self.cell_height) + 1
        col_min, col_max, row_min, row_max = self._axis_bounds()
        hypot = math.hypot
        cells_x = self.cells_x
        result: List[int] = []
        append = result.append
        for row in range(max(0, home_row - reach_y), min(self.cells_y, home_row + reach_y + 1)):
            low = row_min[row]
            high = row_max[row]
            if y < low:
                dy = low - y
            elif y > high:
                dy = y - high
            else:
                dy = 0.0
            if dy > radius:
                continue
            base = row * cells_x
            for col in range(max(0, home_col - reach_x), min(self.cells_x, home_col + reach_x + 1)):
                cell_id = base + col + 1
                if cell_id == home:
                    continue
                low = col_min[col]
                high = col_max[col]
                if x < low:
                    dx = low - x
                elif x > high:
                    dx = x - high
                else:
                    dx = 0.0
                if dx > radius:
                    continue
                # dx <= radius and dy <= radius here; a zero component makes
                # hypot degenerate to the other component, already bounded.
                if dx == 0.0 or dy == 0.0 or hypot(dx, dy) <= radius:
                    append(cell_id)
        return result

    # ------------------------------------------------------------------ #
    # factory helpers

    @classmethod
    def square(cls, extent: BoundingBox, cells_per_side: int) -> "UniformGrid":
        """A square ``n x n`` grid over ``extent`` (the paper's "grid size n")."""
        return cls(extent, cells_per_side, cells_per_side)

    @classmethod
    def unit(cls, cells_per_side: int) -> "UniformGrid":
        """A square grid over the normalised ``[0, 1] x [0, 1]`` space (Section 6.3)."""
        return cls.square(BoundingBox(0.0, 0.0, 1.0, 1.0), cells_per_side)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"UniformGrid({self.cells_x}x{self.cells_y}, "
            f"cell={self.cell_width:.4g}x{self.cell_height:.4g})"
        )
